// Package motifs provides the paper's concrete algorithmic motifs — Server,
// Rand, Random, Tree1, Tree-Reduce-1, Tree-Reduce-2, and Scheduler — built
// on the motif framework of package core, together with the tree encodings
// their applications use.
package motifs

import (
	"fmt"
	"math/rand"

	"repro/internal/term"
)

// BinTree is the binary reduction tree a user application supplies: internal
// nodes carry an operator name, leaves carry an arbitrary payload term. It
// is the Go-side twin of the paper's tree(V,L,R)/leaf(L) structure.
type BinTree struct {
	// Op is the operator at an internal node ("" at leaves).
	Op string
	// Leaf is the payload at a leaf (nil at internal nodes).
	Leaf term.Term
	// L, R are the children (nil at leaves).
	L, R *BinTree
}

// NewLeaf builds a leaf node.
func NewLeaf(payload term.Term) *BinTree { return &BinTree{Leaf: payload} }

// NewNode builds an internal node.
func NewNode(op string, l, r *BinTree) *BinTree { return &BinTree{Op: op, L: l, R: r} }

// IsLeaf reports whether the node is a leaf.
func (t *BinTree) IsLeaf() bool { return t.L == nil && t.R == nil }

// Nodes returns the total node count.
func (t *BinTree) Nodes() int {
	if t == nil {
		return 0
	}
	if t.IsLeaf() {
		return 1
	}
	return 1 + t.L.Nodes() + t.R.Nodes()
}

// Leaves returns the leaf count.
func (t *BinTree) Leaves() int {
	if t == nil {
		return 0
	}
	if t.IsLeaf() {
		return 1
	}
	return t.L.Leaves() + t.R.Leaves()
}

// Height returns the height (a single leaf has height 1).
func (t *BinTree) Height() int {
	if t == nil {
		return 0
	}
	if t.IsLeaf() {
		return 1
	}
	lh, rh := t.L.Height(), t.R.Height()
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}

// Term encodes the tree in the divide-and-conquer form used by Tree1 and
// Tree-Reduce-1: tree(Op, L, R) for internal nodes and leaf(V) for leaves.
func (t *BinTree) Term() term.Term {
	if t.IsLeaf() {
		return term.NewCompound("leaf", t.Leaf)
	}
	return term.NewCompound("tree", term.Atom(t.Op), t.L.Term(), t.R.Term())
}

// String renders the tree as its Term form.
func (t *BinTree) String() string { return term.Sprint(t.Term()) }

// LabelScheme selects how Tree-Reduce-2 assigns processor labels to nodes.
type LabelScheme int

const (
	// SiblingLabels is the paper's scheme: leaf labels are random with
	// sibling leaves sharing a label; an internal node takes the label of
	// its left child. This guarantees at most one of each node's two
	// offspring values crosses processors.
	SiblingLabels LabelScheme = iota
	// IndependentLabels labels every leaf independently at random (the
	// ablation baseline): internal nodes still take the left child's label,
	// but leaf siblings may diverge, increasing communication.
	IndependentLabels
)

func (s LabelScheme) String() string {
	switch s {
	case SiblingLabels:
		return "sibling"
	case IndependentLabels:
		return "independent"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Labeling is the result of the Tree-Reduce-2 preprocessing step: node
// identifiers, processor labels, and the tuple term the library consumes.
type Labeling struct {
	// N is the node count; identifiers run 1..N in preorder.
	N int
	// Label[i] is the 1-based processor label of node i (index 0 unused).
	Label []int
	// Parent[i] is the identifier of node i's parent (-1 for the root).
	Parent []int
	// Tuple is the encoded tree: element i is
	// node(Data_i, ParentId_i, ParentLabel_i, Side_i) with Data either
	// op(Op) or leaf(V), and Side one of l, r, root.
	Tuple term.Term
}

// LabelTree performs Tree-Reduce-2's preprocessing: it assigns identifiers
// and processor labels (1..procs) to every node under the given scheme and
// encodes the tree as the tuple the Tree-Reduce-2 library consumes. The
// paper introduces this step via the motif's transformation; here it is the
// motif's Go-side preparation function, driven by a caller-supplied rng for
// reproducibility.
func LabelTree(t *BinTree, procs int, scheme LabelScheme, rng *rand.Rand) (*Labeling, error) {
	if t == nil {
		return nil, fmt.Errorf("motifs: LabelTree on empty tree")
	}
	if procs < 1 {
		return nil, fmt.Errorf("motifs: LabelTree needs >= 1 processor, got %d", procs)
	}
	n := t.Nodes()
	lab := &Labeling{
		N:      n,
		Label:  make([]int, n+1),
		Parent: make([]int, n+1),
	}
	nodes := make([]*BinTree, n+1)
	sides := make([]string, n+1)

	// Assign preorder identifiers.
	next := 1
	var number func(node *BinTree, parent int, side string) int
	number = func(node *BinTree, parent int, side string) int {
		id := next
		next++
		nodes[id] = node
		lab.Parent[id] = parent
		sides[id] = side
		if !node.IsLeaf() {
			number(node.L, id, "l")
			number(node.R, id, "r")
		}
		return id
	}
	number(t, -1, "root")

	// Assign labels bottom-up.
	var labelOf func(id int) int
	labelOf = func(id int) int {
		node := nodes[id]
		if node.IsLeaf() {
			return rng.Intn(procs) + 1
		}
		leftID := id + 1
		rightID := leftID + nodes[id].L.Nodes()
		lab.Label[leftID] = labelOf(leftID)
		if scheme == SiblingLabels && node.L.IsLeaf() && node.R.IsLeaf() {
			lab.Label[rightID] = lab.Label[leftID]
		} else {
			lab.Label[rightID] = labelOf(rightID)
		}
		return lab.Label[leftID]
	}
	lab.Label[1] = labelOf(1)

	// Encode the tuple.
	elems := make([]term.Term, n)
	for id := 1; id <= n; id++ {
		node := nodes[id]
		var data term.Term
		if node.IsLeaf() {
			data = term.NewCompound("leaf", node.Leaf)
		} else {
			data = term.NewCompound("op", term.Atom(node.Op))
		}
		parentLabel := 1 // root's value is finalized at server 1
		if lab.Parent[id] > 0 {
			parentLabel = lab.Label[lab.Parent[id]]
		}
		elems[id-1] = term.NewCompound("node",
			data,
			term.Int(lab.Parent[id]),
			term.Int(parentLabel),
			term.Atom(sides[id]),
		)
	}
	lab.Tuple = term.MkTuple(elems...)
	return lab, nil
}

// CrossEdges counts, over all internal nodes, how many of the node's two
// offspring values must cross processors under the labeling: offspring c of
// parent p crosses when label(c) != label(p). This is the quantity the
// paper's sibling-labeling scheme bounds by 1 per node.
func (l *Labeling) CrossEdges() (crossings int, pairsWithTwo int) {
	childLabels := map[int][]int{}
	for id := 2; id <= l.N; id++ {
		p := l.Parent[id]
		childLabels[p] = append(childLabels[p], l.Label[id])
	}
	for p, kids := range childLabels {
		c := 0
		for _, kl := range kids {
			if kl != l.Label[p] {
				c++
			}
		}
		crossings += c
		if c == 2 {
			pairsWithTwo++
		}
	}
	return crossings, pairsWithTwo
}
