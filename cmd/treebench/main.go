// Command treebench drives the tree-reduction experiments of DESIGN.md's
// index and prints one table per experiment.
//
// Usage:
//
//	treebench [-exp all|arith|balance|crossover|memory|locality|reuse|skeletons] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/metrics"
)

func main() {
	which := flag.String("exp", "all", "experiment: all, arith (E2), balance (E6), crossover (E7), memory (E9), locality (E5), reuse (E8), skeletons (E10)")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	type entry struct {
		key, title string
		run        func() (*metrics.Table, error)
	}
	entries := []entry{
		{"arith", "E2: Figure 2 — arithmetic tree reduction (value 24) under Tree-Reduce-1",
			func() (*metrics.Table, error) { return exp.E2ArithmeticTree(*seed) }},
		{"speedup", "E2b: simulated speedup of Tree-Reduce-1 (256-leaf tree, uniform cost 200)",
			func() (*metrics.Table, error) { return exp.E2Speedup(*seed) }},
		{"balance", "E6: random mapping load balance vs |Nodes|/|Processors|",
			func() (*metrics.Table, error) { return exp.E6RandomMappingBalance(*seed) }},
		{"crossover", "E7: static vs dynamic allocation under uniform / exponential / pareto costs",
			func() (*metrics.Table, error) { return exp.E7StaticVsDynamic(*seed) }},
		{"memory", "E9: peak concurrent node evaluations per processor (TR1 vs TR2)",
			func() (*metrics.Table, error) { return exp.E9PeakMemory(*seed) }},
		{"locality", "E5: sibling vs independent labeling — crossings and messages (TR2)",
			func() (*metrics.Table, error) { return exp.E5LabelLocality(*seed) }},
		{"reuse", "E8: lines of code per composition stage and transformation time",
			func() (*metrics.Table, error) { return exp.E8ReuseCost() }},
		{"skeletons", "E10: future-work motif areas on standard problems",
			func() (*metrics.Table, error) { return exp.E10Skeletons(*seed) }},
		{"langmotifs", "E10b: motif areas implemented at the language level",
			func() (*metrics.Table, error) { return exp.E10LanguageMotifs(*seed) }},
		{"latency", "E12: message-latency sensitivity of the two tree-reduction motifs",
			func() (*metrics.Table, error) { return exp.E12MessageLatency(*seed) }},
		{"batching", "E13: scheduler batching ablation (messages vs balance)",
			func() (*metrics.Table, error) { return exp.E13SchedulerBatching(*seed) }},
		{"hierarchy", "E13b: flat vs hierarchical scheduler (top-manager traffic)",
			func() (*metrics.Table, error) { return exp.E13bHierarchy(*seed) }},
	}

	ran := false
	for _, e := range entries {
		if *which != "all" && *which != e.key {
			continue
		}
		ran = true
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %s: %v\n", e.key, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n", e.title, tab)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "treebench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
