package bio

import (
	"fmt"
	"strings"
)

// Scoring parameters for alignment (simple linear gap model).
const (
	matchScore    = 2
	mismatchScore = -1
	gapScore      = -2
)

// Alignment is a multiple sequence alignment: rows of equal length over
// ACGU plus '-' gaps. A single ungapped row is the trivial alignment of one
// sequence.
type Alignment []string

// Width returns the column count.
func (a Alignment) Width() int {
	if len(a) == 0 {
		return 0
	}
	return len(a[0])
}

// Validate checks the alignment invariants: non-empty, rectangular, only
// legal characters, and no all-gap rows.
func (a Alignment) Validate() error {
	if len(a) == 0 {
		return fmt.Errorf("bio: empty alignment")
	}
	w := len(a[0])
	for i, row := range a {
		if len(row) != w {
			return fmt.Errorf("bio: row %d has width %d, want %d", i, len(row), w)
		}
		allGap := true
		for j := 0; j < len(row); j++ {
			c := row[j]
			if c != '-' && !strings.ContainsRune(Bases, rune(c)) {
				return fmt.Errorf("bio: row %d has illegal character %q", i, string(c))
			}
			if c != '-' {
				allGap = false
			}
		}
		if allGap && w > 0 {
			return fmt.Errorf("bio: row %d is all gaps", i)
		}
	}
	return nil
}

// Degap returns the original (ungapped) sequence of row i.
func (a Alignment) Degap(i int) Seq {
	return Seq(strings.ReplaceAll(a[i], "-", ""))
}

// charScore scores a pair of alignment characters.
func charScore(x, y byte) int {
	switch {
	case x == '-' && y == '-':
		return 0
	case x == '-' || y == '-':
		return gapScore
	case x == y:
		return matchScore
	default:
		return mismatchScore
	}
}

// PairAlign globally aligns two sequences with Needleman–Wunsch and returns
// the two gapped rows and the optimal score.
func PairAlign(a, b Seq) (string, string, int) {
	rows, score := profileAlign(Alignment{string(a)}, Alignment{string(b)})
	return rows[0], rows[1], score
}

// AlignNode is the node evaluation function of the paper's Section 3
// application: it merges the alignments of two sequence clusters into one
// alignment of the union, by aligning profile against profile. Its cost
// grows with the product of the two alignments' sizes and is therefore
// non-uniform across the phylogenetic tree — the property that motivates
// the dynamic tree-reduction motifs.
func AlignNode(l, r Alignment) (Alignment, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("left input: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("right input: %w", err)
	}
	out, _ := profileAlign(l, r)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("align-node output: %w", err)
	}
	return out, nil
}

// AlignCost estimates the work of AlignNode(l, r) — the DP table size
// weighted by the profile heights. Used as the simulator's cycle cost.
func AlignCost(l, r Alignment) int64 {
	return int64(l.Width()+1) * int64(r.Width()+1) * int64(len(l)+len(r)) / 8
}

// profileAlign aligns two profiles column-against-column with
// Needleman–Wunsch, using the average pairwise character score between
// columns, and returns the merged alignment (l's rows first) and the score.
func profileAlign(l, r Alignment) (Alignment, int) {
	m, n := l.Width(), r.Width()
	// colScore[i][j] is cached lazily per cell; with small alphabets a
	// direct computation is fine.
	colPairScore := func(i, j int) int {
		s := 0
		for _, lr := range l {
			for _, rr := range r {
				s += charScore(lr[i], rr[j])
			}
		}
		return s / (len(l) * len(r))
	}
	gapAgainst := func(p Alignment, col int) int {
		// Score of aligning column col of p against an all-gap column.
		s := 0
		for _, row := range p {
			s += charScore(row[col], '-')
		}
		return s / len(p)
	}

	// DP over (m+1) x (n+1).
	dp := make([][]int, m+1)
	move := make([][]byte, m+1) // 'd' diag, 'u' up (l consumes), 'l' left (r consumes)
	for i := range dp {
		dp[i] = make([]int, n+1)
		move[i] = make([]byte, n+1)
	}
	for i := 1; i <= m; i++ {
		dp[i][0] = dp[i-1][0] + gapAgainst(l, i-1)
		move[i][0] = 'u'
	}
	for j := 1; j <= n; j++ {
		dp[0][j] = dp[0][j-1] + gapAgainst(r, j-1)
		move[0][j] = 'l'
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d := dp[i-1][j-1] + colPairScore(i-1, j-1)
			u := dp[i-1][j] + gapAgainst(l, i-1)
			lft := dp[i][j-1] + gapAgainst(r, j-1)
			best, mv := d, byte('d')
			if u > best {
				best, mv = u, 'u'
			}
			if lft > best {
				best, mv = lft, 'l'
			}
			dp[i][j], move[i][j] = best, mv
		}
	}

	// Traceback: build the merged rows right to left.
	k := len(l) + len(r)
	bufs := make([][]byte, k)
	i, j := m, n
	for i > 0 || j > 0 {
		switch move[i][j] {
		case 'd':
			i--
			j--
			for x, row := range l {
				bufs[x] = append(bufs[x], row[i])
			}
			for x, row := range r {
				bufs[len(l)+x] = append(bufs[len(l)+x], row[j])
			}
		case 'u':
			i--
			for x, row := range l {
				bufs[x] = append(bufs[x], row[i])
			}
			for x := range r {
				bufs[len(l)+x] = append(bufs[len(l)+x], '-')
			}
		case 'l':
			j--
			for x := range l {
				bufs[x] = append(bufs[x], '-')
			}
			for x, row := range r {
				bufs[len(l)+x] = append(bufs[len(l)+x], row[j])
			}
		default:
			panic("bio: corrupt traceback")
		}
	}
	out := make(Alignment, k)
	for x, buf := range bufs {
		// Reverse.
		for a, b := 0, len(buf)-1; a < b; a, b = a+1, b-1 {
			buf[a], buf[b] = buf[b], buf[a]
		}
		out[x] = string(buf)
	}
	return out, dp[m][n]
}

// Identity returns the fraction of aligned (non-gap/non-gap) positions that
// match between rows i and j.
func (a Alignment) Identity(i, j int) float64 {
	ri, rj := a[i], a[j]
	match, total := 0, 0
	for k := 0; k < len(ri); k++ {
		if ri[k] == '-' || rj[k] == '-' {
			continue
		}
		total++
		if ri[k] == rj[k] {
			match++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// Consensus returns the majority character of every column (gaps excluded;
// ties broken alphabetically; all-gap columns yield '-').
func (a Alignment) Consensus() string {
	w := a.Width()
	out := make([]byte, w)
	for c := 0; c < w; c++ {
		counts := map[byte]int{}
		for _, row := range a {
			if row[c] != '-' {
				counts[row[c]]++
			}
		}
		best, bestN := byte('-'), 0
		for _, ch := range []byte("ACGU") {
			if counts[ch] > bestN {
				best, bestN = ch, counts[ch]
			}
		}
		out[c] = best
	}
	return string(out)
}
