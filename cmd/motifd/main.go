// Command motifd is the network serving layer over the native skeletons:
// an HTTP/JSON daemon that accepts alignment jobs, generic tree reductions,
// and Strand program runs, and executes them on a shared worker pool with a
// bounded admission queue (load shedding via 429), request batching of
// small alignment jobs, per-request deadlines, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	motifd [-addr :8077] [-procs 4] [-inner 4] [-queue 64] [-batch 8]
//	       [-timeout 30s] [-seed N] [-store DIR] [-memo BYTES]
//	       [-qos [-tenant-depth N] [-weights gold=4,free=1]]
//	       [-coordinator http://host:8070[,http://standby:8071] [-advertise URL] [-id NAME]]
//
// With -qos the admission queue becomes tenant-aware: requests carry a
// tenant (X-Motif-Tenant header or "tenant" body field) and a class
// (X-Motif-Class: low|normal|high), tenants drain in weighted-fair order
// with bounded per-tenant depth, high-class arrivals may preempt a
// tenant's own queued lower-class work, and /metrics grows a "qos" block
// with per-tenant admitted/shed/preempted counts and wait percentiles.
//
// With -store the daemon journals every job's lifecycle to a write-ahead
// log in DIR and, on restart against the same directory, replays it:
// finished jobs stay pollable, incomplete jobs are re-admitted under their
// original IDs, tree reductions resume from their deepest journaled
// checkpoints, and client-supplied request ids dedup across the restart.
//
// With -memo the daemon keeps a content-addressed result cache of that many
// bytes: finished jobs answer identical later submissions instantly,
// identical in-flight submissions collapse onto one execution, and tree
// reductions reuse subtree results across jobs. /metrics grows a "memo"
// block with the cache's hit-rate.
//
// With -coordinator the daemon additionally runs as a cluster worker: it
// registers with the motifctl coordinator at that URL, heartbeats load
// reports, and re-registers if the coordinator restarts. The job API is
// unchanged — the coordinator ships jobs to the same POST /v1/jobs every
// local client uses. Further comma-separated URLs name standby
// coordinators (motifctl -standby); the agent fails over down the list
// when the active one stays unreachable. Combined with -memo, the worker
// also joins the cluster's peer cache tier: it serves its memo entries to
// peers (GET /v1/memo/{digest}, digest-checksummed) and resolves local
// misses by asking the coordinator which peer filled the digest and
// fetching it worker-to-worker before falling back to computing.
//
// API:
//
//	POST /v1/jobs        submit a job (202 with id; 429 + Retry-After when
//	                     the admission queue is full)
//	GET  /v1/jobs/{id}   poll a job
//	GET  /v1/jobs        list recent jobs
//	GET  /metrics        serving metrics (?format=text for humans)
//	GET  /debug/trace    structured event stream (?format=chrome)
//	GET  /healthz        liveness + drain state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cmdutil"
	"repro/internal/memoshare"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	procs := cmdutil.Procs(4, "pool workers")
	inner := flag.Int("inner", 4, "parallelism inside one job's reduction")
	queueCap := flag.Int("queue", 64, "admission queue bound (beyond it, shed with 429)")
	batchMax := flag.Int("batch", 8, "max small alignment jobs coalesced into one farm dispatch")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-job deadline")
	drain := flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
	seed := cmdutil.Seed(7)
	coordinator := flag.String("coordinator", "", "coordinator URL(s), comma-separated with standbys after the active; set to join a cluster as a worker")
	advertise := flag.String("advertise", "", "base URL the coordinator ships jobs to (default http://127.0.0.1<addr>)")
	workerID := flag.String("id", "", "cluster worker id (default host-pid)")
	storeDir := flag.String("store", "", "durable job store directory; empty disables persistence")
	memoBytes := cmdutil.MemoBytes(0)
	fairQoS, tenantDepth, weightSpec := cmdutil.QoSFlags()
	flag.Parse()

	weights, err := cmdutil.TenantWeights(*weightSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifd: -weights: %v\n", err)
		os.Exit(2)
	}

	var js *store.JobStore
	if *storeDir != "" {
		var err error
		js, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifd: store: %v\n", err)
			os.Exit(2)
		}
		m := js.Metrics()
		fmt.Fprintf(os.Stderr, "motifd: store %s: replayed %d records (%d jobs, %d incomplete)\n",
			*storeDir, m.ReplayedRecords, m.TrackedJobs, m.IncompleteJobs)
	}

	s := serve.New(serve.Config{
		Workers:        *procs,
		InnerWorkers:   *inner,
		QueueCap:       *queueCap,
		BatchMax:       *batchMax,
		DefaultTimeout: *timeout,
		Seed:           *seed,
		Store:          js,
		MemoBytes:      *memoBytes,
		FairQoS:        *fairQoS,
		TenantDepth:    *tenantDepth,
		TenantWeights:  weights,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "motifd: listening on %s (%d workers, queue %d)\n",
			*addr, *procs, *queueCap)
		errc <- httpSrv.ListenAndServe()
	}()

	var agent *cluster.Agent
	if *coordinator != "" {
		adv := *advertise
		if adv == "" {
			if !strings.HasPrefix(*addr, ":") {
				fmt.Fprintln(os.Stderr, "motifd: -advertise is required when -addr is not of the form :port")
				os.Exit(2)
			}
			adv = "http://127.0.0.1" + *addr
		}
		// -coordinator may list standbys after the active URL; the agent
		// fails over down the list when the current coordinator goes silent.
		var urls []string
		for _, u := range strings.Split(*coordinator, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "motifd: -coordinator needs at least one URL")
			os.Exit(2)
		}
		var err error
		agent, err = cluster.StartAgent(cluster.AgentConfig{
			CoordinatorURL: urls[0],
			StandbyURLs:    urls[1:],
			ID:             *workerID,
			Addr:           adv,
			Server:         s,
			PoolWorkers:    *procs,
			QueueCap:       *queueCap,
			Seed:           *seed,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "motifd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifd: %v\n", err)
			os.Exit(2)
		}
		// With a memo cache, local misses may be resolvable from peers: the
		// fetcher asks the (current) coordinator who recently filled the
		// digest and pulls the entry worker-to-worker, digest-verified.
		if s.MemoCache() != nil {
			s.SetPeerFetcher(memoshare.NewFetcher(memoshare.FetcherConfig{
				Cache:       s.MemoCache(),
				Self:        agent.ID(),
				Coordinator: agent.CoordinatorURL,
				Tracer:      s.Tracer(),
			}))
		}
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "motifd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop heartbeating (the coordinator declares us dead
	// via expiry and re-places anything still in flight), stop accepting
	// connections, then let queued and in-flight jobs finish within the
	// drain budget.
	fmt.Fprintln(os.Stderr, "motifd: draining...")
	if agent != nil {
		agent.Stop()
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "motifd: http shutdown: %v\n", err)
	}
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "motifd: pool drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if js != nil {
		if err := js.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "motifd: store close: %v\n", err)
		}
	}
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "motifd: drained (admitted=%d done=%d failed=%d shed=%d)\n",
		m.Admitted, m.Done, m.Failed, m.Shed)
}
