// Alignment: the paper's motivating application — multiple alignment of
// related RNA sequences by reducing a phylogenetic guide tree with an
// align-node operator.
//
// A synthetic family is evolved from a common ancestor, the guide tree is
// built by UPGMA over pairwise alignment distances, and the tree is reduced
// twice: natively (goroutine skeleton, wall clock) and on the simulated
// multicomputer through the composed Tree-Reduce-2 motif with align-node as
// a native evaluation function.
//
//	go run ./examples/alignment
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bio"
	"repro/internal/motifs"
	"repro/internal/skel"
	"repro/internal/strand"
)

func main() {
	fam, err := bio.Evolve(10, 60, 0.08, 0.01, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("family:")
	for i, s := range fam.Seqs {
		fmt.Printf("  %-6s %s\n", fam.Names[i], s)
	}

	guide, err := bio.GuideTree(fam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguide tree:", guide)

	// Native reduction (wall clock).
	start := time.Now()
	aln, stats, err := bio.AlignFamily(context.Background(), fam, skel.ReduceOptions{Workers: 4, Mapper: skel.MapRandom, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnative alignment (4 workers, %v, %d cross messages):\n",
		time.Since(start).Round(time.Microsecond), stats.CrossMessages)
	for i := range aln {
		fmt.Printf("  %s\n", aln[i])
	}
	fmt.Printf("  consensus: %s\n", aln.Consensus())

	// The same computation through the Tree-Reduce-2 motif on the simulator.
	value, res, err := motifs.RunTreeReduce2("", bio.SeqTree(guide, fam), motifs.SiblingLabels,
		motifs.RunConfig{
			Procs:   4,
			Seed:    2026,
			Natives: map[string]strand.NativeFn{"eval/4": bio.EvalNative()},
			Watch:   []string{"eval/4"},
		})
	if err != nil {
		log.Fatal(err)
	}
	simAln, err := bio.TermAlignment(value)
	if err != nil {
		log.Fatal(err)
	}
	agree := len(simAln) == len(aln)
	for i := 0; agree && i < len(aln); i++ {
		agree = simAln[i] == aln[i]
	}
	fmt.Printf("\nsimulated Tree-Reduce-2: makespan=%d messages=%d agrees-with-native=%v\n",
		res.Metrics.Makespan, res.Metrics.Messages, agree)
}
