package motifs

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/strand"
	"repro/internal/term"
	"repro/internal/trace"
)

// ArithmeticEvalSrc is the example application of Section 3.1: a node
// evaluation function for arithmetic expression trees. Linking it with a
// tree-reduction motif yields a parallel expression evaluator.
const ArithmeticEvalSrc = `
% Application-specific node evaluation function (Figure 2, Part A).
eval('+', L, R, Value) :- Value is L + R.
eval('*', L, R, Value) :- Value is L * R.
eval('-', L, R, Value) :- Value is L - R.
eval(max, L, R, Value) :- Value is max(L, R).
eval(min, L, R, Value) :- Value is min(L, R).
`

// RunConfig configures a motif execution on the simulated machine.
type RunConfig struct {
	// Procs is the number of processors (= servers); Seed drives every
	// random choice (mapping, labeling) for reproducibility.
	Procs int
	Seed  int64
	// MessageCost is the simulated inter-processor message latency.
	MessageCost int64
	// EvalCost, if non-nil, returns the cycle cost of one eval/4 reduction
	// given its goal — the knob for non-uniform node evaluation times.
	EvalCost func(goal term.Term) int64
	// Natives are extra foreign predicates (e.g. a Go align_node).
	Natives map[string]strand.NativeFn
	// Watch gauges live process counts per indicator (see strand.Options).
	Watch []string
	// Trace, if non-nil, receives the reduction trace.
	Trace io.Writer
	// Tracer, if non-nil, receives the structured event stream of the run
	// (machine and runtime levels; see package trace).
	Tracer trace.Tracer
	// MaxCycles caps the simulation (0 = default).
	MaxCycles int64
}

func (cfg RunConfig) options() strand.Options {
	opts := strand.Options{
		Procs:       cfg.Procs,
		Seed:        cfg.Seed,
		MessageCost: cfg.MessageCost,
		Natives:     cfg.Natives,
		Watch:       cfg.Watch,
		Trace:       cfg.Trace,
		Tracer:      cfg.Tracer,
		MaxCycles:   cfg.MaxCycles,
	}
	if cfg.EvalCost != nil {
		opts.CostFn = func(ind string, goal term.Term) int64 {
			if ind == "eval/4" {
				return cfg.EvalCost(goal)
			}
			return 0
		}
	}
	return opts
}

// ApplyAndRun applies a motif (or composition) to the application program
// in appSrc, then executes the resulting program with the initial goal
// produced by goal. The *term.Var returned by goal is resolved and returned
// after the run.
func ApplyAndRun(applier core.Applier, appSrc string,
	goal func(h *term.Heap) (term.Term, *term.Var, error),
	cfg RunConfig) (term.Term, *strand.Result, error) {

	h := term.NewHeap()
	app, err := parser.Parse(h, appSrc)
	if err != nil {
		return nil, nil, fmt.Errorf("parse application: %w", err)
	}
	prog, err := applier.ApplyTo(app, h)
	if err != nil {
		return nil, nil, err
	}
	g, result, err := goal(h)
	if err != nil {
		return nil, nil, err
	}
	rt := strand.New(prog, h, cfg.options())
	rt.Spawn(g, 0)
	res, err := rt.Run()
	if err != nil {
		return nil, res, err
	}
	return term.Resolve(result), res, nil
}

// RunTreeReduce1 reduces tree with the Tree-Reduce-1 motif applied to the
// application in appSrc (which must define eval/4). It returns the root
// value and the run's metrics.
func RunTreeReduce1(appSrc string, tree *BinTree, cfg RunConfig) (term.Term, *strand.Result, error) {
	return ApplyAndRun(TreeReduce1(), appSrc,
		func(h *term.Heap) (term.Term, *term.Var, error) {
			v := h.NewVar("Value")
			return TreeReduce1Goal(tree.Term(), cfg.Procs, v), v, nil
		}, cfg)
}

// RunTreeReduce2 reduces tree with the Tree-Reduce-2 motif under the given
// labeling scheme. The labeling rng derives from cfg.Seed.
func RunTreeReduce2(appSrc string, tree *BinTree, scheme LabelScheme, cfg RunConfig) (term.Term, *strand.Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ee2))
	lab, err := LabelTree(tree, cfg.Procs, scheme, rng)
	if err != nil {
		return nil, nil, err
	}
	return ApplyAndRun(TreeReduce2(), appSrc,
		func(h *term.Heap) (term.Term, *term.Var, error) {
			v := h.NewVar("Value")
			return TreeReduce2Goal(lab, cfg.Procs, v), v, nil
		}, cfg)
}

// RunScheduler executes tasks under the scheduler motif applied to the
// application in appSrc (which must define task/2). It returns the result
// list (in task order).
func RunScheduler(appSrc string, tasks []term.Term, cfg RunConfig) ([]term.Term, *strand.Result, error) {
	out, res, err := ApplyAndRun(SchedulerMotif(), appSrc,
		func(h *term.Heap) (term.Term, *term.Var, error) {
			v := h.NewVar("Results")
			return SchedulerGoal(tasks, cfg.Procs, v), v, nil
		}, cfg)
	if err != nil {
		return nil, res, err
	}
	results, ok := term.ListSlice(out)
	if !ok {
		return nil, res, fmt.Errorf("scheduler results not a proper list: %s", term.Sprint(out))
	}
	return results, res, nil
}
