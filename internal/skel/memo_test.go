package skel

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/memo"
)

func intLeafKey(v int64) memo.Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return memo.Leaf("test.int", b[:])
}

func intSize(int64) int64 { return 8 }

func internalNodes[V any](t *Tree[V]) int64 { return int64(t.Nodes() - t.Leaves()) }

// TestTreeDigestsPositionIndependent: a subtree's digest depends only on
// its own contents, so the same subtree embedded in two different trees
// (at different positions) produces the same key — the property that lets
// one job's cache fills answer another job's lookups.
func TestTreeDigestsPositionIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shared := randomTree(20, rng)
	a := NewNode("+", shared, randomTree(10, rng))
	b := NewNode("*", randomTree(5, rng), shared)

	da := TreeDigests(a, intLeafKey)
	db := TreeDigests(b, intLeafKey)
	// In a, shared is the left child: preorder index 1. In b it is the
	// right child: index 1 + |left subtree|.
	sharedInB := 1 + b.L.Nodes()
	if da[1] != db[sharedInB] {
		t.Fatal("same subtree digests differently at different positions")
	}
	if da[0] == db[0] {
		t.Fatal("different trees share a root digest")
	}
}

// TestTreeReduceMemoWarmRerun: a cold memoized run fills the cache; the
// warm rerun restores the root and evaluates nothing — MemoHits accounts
// for every internal node.
func TestTreeReduceMemoWarmRerun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := randomTree(64, rng)
	want := SeqReduce(tr, intEval)
	internal := internalNodes(tr)
	cache := memo.New(1 << 20)
	digests := TreeDigests(tr, intLeafKey)

	cold := ReduceOptions{Workers: 4}
	Memoize[int64](&cold, cache, digests, intSize)
	got, stats, err := TreeReduce(context.Background(), tr, intEval, cold)
	if err != nil || got != want {
		t.Fatalf("cold run got %d (%v), want %d", got, err, want)
	}
	if stats.MemoHits != 0 {
		t.Fatalf("cold run MemoHits = %d, want 0", stats.MemoHits)
	}
	if stats.TotalUnits() != internal {
		t.Fatalf("cold run units = %d, want %d", stats.TotalUnits(), internal)
	}

	warm := ReduceOptions{Workers: 4}
	Memoize[int64](&warm, cache, digests, intSize)
	got, stats, err = TreeReduce(context.Background(), tr, intEval, warm)
	if err != nil || got != want {
		t.Fatalf("warm run got %d (%v), want %d", got, err, want)
	}
	if stats.TotalUnits() != 0 {
		t.Fatalf("warm run evaluated %d nodes, want 0", stats.TotalUnits())
	}
	if stats.MemoHits != internal {
		t.Fatalf("warm run MemoHits = %d, want every internal node (%d)", stats.MemoHits, internal)
	}
}

// TestTreeReduceMemoMatchesUnmemoized: for the same tree, memoized runs
// (cold and warm) return exactly what the plain run returns.
func TestTreeReduceMemoMatchesUnmemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		tr := randomTree(10+rng.Intn(100), rng)
		plain, _, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		cache := memo.New(1 << 20)
		digests := TreeDigests(tr, intLeafKey)
		for pass := 0; pass < 2; pass++ { // cold, then warm
			opts := ReduceOptions{Workers: 3}
			Memoize[int64](&opts, cache, digests, intSize)
			got, _, err := TreeReduce(context.Background(), tr, intEval, opts)
			if err != nil || got != plain {
				t.Fatalf("trial %d pass %d: memoized got %d (%v), plain %d",
					trial, pass, got, err, plain)
			}
		}
	}
}

// TestTreeReduceMemoSharedSubtree: warming the cache with one tree
// accelerates a different tree that embeds the same subtree — the
// cross-job reuse the content addressing exists for.
func TestTreeReduceMemoSharedSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shared := randomTree(32, rng)
	a := NewNode("+", shared, randomTree(16, rng))
	b := NewNode("*", randomTree(8, rng), shared)
	cache := memo.New(1 << 20)

	optsA := ReduceOptions{Workers: 4}
	Memoize[int64](&optsA, cache, TreeDigests(a, intLeafKey), intSize)
	if _, _, err := TreeReduce(context.Background(), a, intEval, optsA); err != nil {
		t.Fatal(err)
	}

	want := SeqReduce(b, intEval)
	optsB := ReduceOptions{Workers: 4}
	Memoize[int64](&optsB, cache, TreeDigests(b, intLeafKey), intSize)
	got, stats, err := TreeReduce(context.Background(), b, intEval, optsB)
	if err != nil || got != want {
		t.Fatalf("got %d (%v), want %d", got, err, want)
	}
	if stats.MemoHits < internalNodes(shared) {
		t.Fatalf("MemoHits = %d, want at least the shared subtree's %d internal nodes",
			stats.MemoHits, internalNodes(shared))
	}
	if stats.TotalUnits()+stats.MemoHits != internalNodes(b) {
		t.Fatalf("units %d + memo hits %d != internal nodes %d",
			stats.TotalUnits(), stats.MemoHits, internalNodes(b))
	}
}

// TestTreeReduceMemoAndResumeCompose: with a partial checkpoint journal
// and a partially warm memo cache, every internal node is either
// evaluated, checkpoint-restored, or memo-restored — exactly once.
func TestTreeReduceMemoAndResumeCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tr := randomTree(80, rng)
	want := SeqReduce(tr, intEval)
	internal := internalNodes(tr)
	digests := TreeDigests(tr, intLeafKey)

	// Cold run capturing every internal value by node index.
	vals := make(map[int]int64)
	var mu sync.Mutex
	if _, _, err := TreeReduce(context.Background(), tr, intEval,
		ReduceOptions{Workers: 4, Checkpoint: func(node int, v any) {
			mu.Lock()
			vals[node] = v.(int64)
			mu.Unlock()
		}}); err != nil {
		t.Fatal(err)
	}

	// Split the nodes (root excluded, so the run has work left): one third
	// into the resume journal, a different third into the memo cache.
	journal := make(map[int]int64)
	cache := memo.New(1 << 20)
	for node, v := range vals {
		if node == 0 {
			continue
		}
		switch node % 3 {
		case 0:
			journal[node] = v
		case 1:
			cache.Put(digests[node], sized[int64]{v: v, bytes: 8})
		}
	}

	opts := ReduceOptions{Workers: 4, Resume: func(node int) (any, bool) {
		v, ok := journal[node]
		return v, ok
	}}
	Memoize[int64](&opts, cache, digests, intSize)
	got, stats, err := TreeReduce(context.Background(), tr, intEval, opts)
	if err != nil || got != want {
		t.Fatalf("got %d (%v), want %d", got, err, want)
	}
	if stats.CheckpointHits == 0 || stats.MemoHits == 0 {
		t.Fatalf("hits: ckpt=%d memo=%d, want both paths exercised",
			stats.CheckpointHits, stats.MemoHits)
	}
	// The exact partition: no node is double-counted or double-skipped.
	if stats.TotalUnits()+stats.CheckpointHits+stats.MemoHits != internal {
		t.Fatalf("units %d + ckpt %d + memo %d != internal nodes %d",
			stats.TotalUnits(), stats.CheckpointHits, stats.MemoHits, internal)
	}
}

// TestTreeReduceResumeWinsOverMemo: when both the journal and the cache
// cover the tree, checkpoint restoration is tried first and the memo
// counter stays zero.
func TestTreeReduceResumeWinsOverMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr := randomTree(40, rng)
	want := SeqReduce(tr, intEval)
	digests := TreeDigests(tr, intLeafKey)

	vals := make(map[int]int64)
	var mu sync.Mutex
	cache := memo.New(1 << 20)
	cold := ReduceOptions{Workers: 4, Checkpoint: func(node int, v any) {
		mu.Lock()
		vals[node] = v.(int64)
		mu.Unlock()
	}}
	Memoize[int64](&cold, cache, digests, intSize)
	if _, _, err := TreeReduce(context.Background(), tr, intEval, cold); err != nil {
		t.Fatal(err)
	}

	warm := ReduceOptions{Workers: 4, Resume: func(node int) (any, bool) {
		v, ok := vals[node]
		return v, ok
	}}
	Memoize[int64](&warm, cache, digests, intSize)
	got, stats, err := TreeReduce(context.Background(), tr, intEval, warm)
	if err != nil || got != want {
		t.Fatalf("got %d (%v), want %d", got, err, want)
	}
	if stats.MemoHits != 0 {
		t.Fatalf("MemoHits = %d, want 0 when the journal covers everything", stats.MemoHits)
	}
	if stats.CheckpointHits != internalNodes(tr) {
		t.Fatalf("CheckpointHits = %d, want %d", stats.CheckpointHits, internalNodes(tr))
	}
}

// TestDivideConquerMemo: the division-path memo hooks answer a warm rerun
// without recombining anything.
func TestDivideConquerMemo(t *testing.T) {
	isBase := func(p int) bool { return p <= 1 }
	base := func(p int) int { return p }
	divide := func(p int) []int { return []int{p / 2, p - p/2} }
	combine := func(_ int, rs []int) int { return rs[0] + rs[1] }

	saved := make(map[string]any)
	var mu sync.Mutex
	want, err := DivideConquer(context.Background(), 64, isBase, base, divide, combine,
		DCOptions{Parallel: 4, MemoStore: func(path string, v any) {
			mu.Lock()
			saved[path] = v
			mu.Unlock()
		}})
	if err != nil || want != 64 {
		t.Fatalf("cold run: %d (%v), want 64", want, err)
	}
	if len(saved) == 0 {
		t.Fatal("MemoStore never called")
	}

	var combines int
	got, err := DivideConquer(context.Background(), 64, isBase, base, divide,
		func(p int, rs []int) int { combines++; return combine(p, rs) },
		DCOptions{Parallel: 1, MemoLookup: func(path string) (any, bool) {
			v, ok := saved[path]
			return v, ok
		}})
	if err != nil || got != want {
		t.Fatalf("warm run: %d (%v), want %d", got, err, want)
	}
	if combines != 0 {
		t.Fatalf("warm run combined %d times, want 0 (root answered from memo)", combines)
	}
}
