package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memo"
	"repro/internal/store"
)

func fourStageSpec() *Spec {
	return &Spec{
		N: 12, Len: 40, Seed: 7,
		Stages: []StageSpec{
			{Name: StageFilter, MinLen: 4},
			{Name: StageAlign, Band: 8},
			{Name: StageReduce, Group: 4, Band: 8},
			{Name: StageReport},
		},
	}
}

func mustValidate(t *testing.T, s *Spec) *Spec {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	good := fourStageSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Buffer != DefaultBuffer {
		t.Fatalf("Buffer default = %d", good.Buffer)
	}
	bad := []*Spec{
		{},     // no source
		{N: 4}, // no len
		{Fasta: ">a\nAC\n", N: 4, Len: 8, Stages: []StageSpec{{Name: StageFilter}}}, // both sources
		{N: 4, Len: 8}, // no stages
		{N: 4, Len: 8, Stages: []StageSpec{{Name: "mystery"}}},
		{N: 4, Len: 8, Stages: []StageSpec{{Name: StageReport}, {Name: StageFilter}}},  // report not last
		{N: 4, Len: 8, Stages: []StageSpec{{Name: StageReduce}, {Name: StageAlign}}},   // align after reduce
		{N: 4, Len: 8, Stages: []StageSpec{{Name: StageReduce}, {Name: StageReduce}}},  // reduce after reduce
		{N: 4, Len: 8, Stages: []StageSpec{{Name: StageFilter, MinLen: 9, MaxLen: 3}}}, // inverted bounds
		{N: 4, Len: 8, Stages: []StageSpec{{Name: StageFilter, DelayMicros: MaxDelayMicros + 1}}},
		{N: MaxSynthetic + 1, Len: 8, Stages: []StageSpec{{Name: StageFilter}}},
		{N: 4, Len: 8, Buffer: MaxBuffer + 1, Stages: []StageSpec{{Name: StageFilter}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestRunFourStageChain(t *testing.T) {
	spec := mustValidate(t, fourStageSpec())
	var got []Record
	res, err := Run(context.Background(), spec, &Env{Emit: func(r Record) { got = append(got, r) }})
	if err != nil {
		t.Fatal(err)
	}
	// 12 records in groups of 4 → 3 group records + 1 summary.
	if res.Records != 4 || len(got) != 4 {
		t.Fatalf("records = %d / %d emitted", res.Records, len(got))
	}
	for i, r := range got[:3] {
		if r.Kind != "group" || len(r.Members) != 4 || r.Columns == 0 || r.Consensus == "" {
			t.Fatalf("group %d = %+v", i, r)
		}
		if len(r.Rows) != 0 {
			t.Fatalf("report stage leaked alignment rows: %+v", r)
		}
	}
	last := got[3]
	if last.Kind != "summary" || last.Groups != 3 || last.MeanIdentity <= 0 {
		t.Fatalf("summary = %+v", last)
	}
	// Stage accounting: source out 12 → filter 12/12 → align 12/12 →
	// reduce 12/3 → report 3/4 (summary appended).
	wantStages := []StageResult{
		{Name: "source", Out: 12},
		{Name: "filter", In: 12, Out: 12},
		{Name: "align", In: 12, Out: 12},
		{Name: "reduce", In: 12, Out: 3},
		{Name: "report", In: 3, Out: 4},
	}
	if len(res.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v", res.Stages)
	}
	for i, w := range wantStages {
		if res.Stages[i] != w {
			t.Fatalf("stage %d = %+v, want %+v", i, res.Stages[i], w)
		}
	}
}

func TestRunFastaSourceFilterDrops(t *testing.T) {
	fasta := ">a\nACGUACGU\n>bad\nACGX\n>short\nAC\n>b\nacgtacgt\n"
	spec := mustValidate(t, &Spec{
		Fasta:  fasta,
		Stages: []StageSpec{{Name: StageFilter, MinLen: 4}, {Name: StageReport}},
	})
	var got []Record
	res, err := Run(context.Background(), spec, &Env{Emit: func(r Record) { got = append(got, r) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[1].Dropped != 2 || res.Stages[1].Out != 2 {
		t.Fatalf("filter accounting = %+v", res.Stages[1])
	}
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "b" || got[2].Kind != "summary" {
		t.Fatalf("records = %+v", got)
	}
	if got[1].Len != 8 {
		t.Fatalf("lowercase DNA record not normalized: %+v", got[1])
	}
}

func TestRunMalformedRecordFailsComputeStage(t *testing.T) {
	// Without a filter stage, garbage reaches align and must fail the job
	// rather than silently vanish.
	spec := mustValidate(t, &Spec{
		Fasta:  ">a\nACGU\n>bad\nAC-GU\n",
		Stages: []StageSpec{{Name: StageAlign}},
	})
	if _, err := Run(context.Background(), spec, &Env{}); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want align failure naming the record", err)
	}
}

func TestRunStreamsBeforeCompletion(t *testing.T) {
	// The acceptance property at the engine level: with a slow final
	// stage, the first record must reach the sink while the run is still
	// in flight.
	spec := fourStageSpec()
	spec.Stages[3].DelayMicros = 30_000 // 30ms per record in report
	mustValidate(t, spec)

	first := make(chan Record, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(context.Background(), spec, &Env{Emit: func(r Record) {
			select {
			case first <- r:
			default:
			}
		}})
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-first:
		select {
		case <-done:
			t.Fatal("run already complete when the first record arrived")
		default: // streaming: record seen, later stage still working
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no record streamed")
	}
	<-done
}

func TestRunBackpressureBoundsInFlight(t *testing.T) {
	// A slow report stage must hold the source back: records in flight
	// (source emissions minus sink arrivals) stay O(stages × buffer).
	spec := &Spec{
		N: 64, Len: 16, Seed: 3, Buffer: 2,
		Stages: []StageSpec{
			{Name: StageFilter},
			{Name: StageReport, DelayMicros: 2_000},
		},
	}
	mustValidate(t, spec)
	m := NewMetrics()
	var sunk atomic.Int64
	var maxInFlight int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		src := m.stage("source")
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
				if d := src.out.Load() - sunk.Load(); d > maxInFlight {
					maxInFlight = d
				}
			}
		}
	}()
	_, err := Run(context.Background(), spec, &Env{
		Metrics: m,
		Emit:    func(Record) { sunk.Add(1) },
	})
	close(stop)
	<-sampled
	if err != nil {
		t.Fatal(err)
	}
	// Chain is source→filter→report→sink: 3 bounded hops of depth 2 plus
	// one record in each of the 4 stages' hands.
	limit := int64(3*(spec.Buffer+1) + 2)
	if maxInFlight > limit {
		t.Fatalf("%d records in flight past a slow stage (bound %d): hand-off is not backpressured", maxInFlight, limit)
	}
	// And the gauges must all be back to zero after a clean run.
	for _, ss := range m.Snapshot().Stages {
		if ss.QueueDepth != 0 {
			t.Fatalf("stage %s queue depth %d after completion", ss.Name, ss.QueueDepth)
		}
	}
}

func TestRunCancelMidStreamNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	spec := fourStageSpec()
	spec.Stages[3].DelayMicros = 20_000
	mustValidate(t, spec)
	m := NewMetrics()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	errc := make(chan error, 1)
	go func() {
		_, err := Run(ctx, spec, &Env{Metrics: m, Emit: func(Record) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
		}})
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline never streamed a record")
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not unwind after cancel")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutines %d > base %d after cancelled run", g, base)
	}
	// Stranded in-channel records must not read as permanent queue depth.
	for _, ss := range m.Snapshot().Stages {
		if ss.QueueDepth != 0 {
			t.Fatalf("stage %s queue depth %d after cancelled run", ss.Name, ss.QueueDepth)
		}
	}
}

func openStore(t *testing.T) *store.JobStore {
	t.Helper()
	js, err := store.Open(filepath.Join(t.TempDir(), "wal"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { js.Close() })
	return js
}

func outputJSON(t *testing.T, recs []Record) string {
	t.Helper()
	var b strings.Builder
	for _, r := range recs {
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(blob)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRunResumesFromWALCheckpoints(t *testing.T) {
	js := openStore(t)
	const jobID = "job-ckpt"
	js.Accepted(jobID, "", nil)

	// Reference: the full chain, no durability, records the expected
	// byte-exact output.
	full := mustValidate(t, fourStageSpec())
	want, err := Run(context.Background(), full, &Env{})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a daemon that died after the first two stages completed:
	// run only filter+align under the job ID, leaving their stage-boundary
	// checkpoints in the WAL.
	head := mustValidate(t, &Spec{N: 12, Len: 40, Seed: 7,
		Stages: []StageSpec{{Name: StageFilter, MinLen: 4}, {Name: StageAlign, Band: 8}}})
	if _, err := Run(context.Background(), head, &Env{Store: js, JobID: jobID}); err != nil {
		t.Fatal(err)
	}

	// Restart: the full chain under the same job ID must resume below
	// align — not re-filter, not re-align — and still produce the same
	// bytes.
	resumed := mustValidate(t, fourStageSpec())
	got, err := Run(context.Background(), resumed, &Env{Store: js, JobID: jobID})
	if err != nil {
		t.Fatal(err)
	}
	if got.ResumedStages != 2 {
		t.Fatalf("resumed_stages = %d, want 2 (filter+align)", got.ResumedStages)
	}
	if !got.Stages[1].Resumed || !got.Stages[2].Resumed || got.Stages[3].Resumed {
		t.Fatalf("stage resume flags = %+v", got.Stages)
	}
	if outputJSON(t, got.Output) != outputJSON(t, want.Output) {
		t.Fatalf("resumed output differs from uninterrupted output:\n%s\nvs\n%s",
			outputJSON(t, got.Output), outputJSON(t, want.Output))
	}
}

func TestRunReplaysCompletedJobFromWAL(t *testing.T) {
	js := openStore(t)
	const jobID = "job-done"
	js.Accepted(jobID, "", nil)
	spec := mustValidate(t, fourStageSpec())
	want, err := Run(context.Background(), spec, &Env{Store: js, JobID: jobID})
	if err != nil {
		t.Fatal(err)
	}
	// Same job, same WAL: every boundary is sealed, so nothing re-runs and
	// the stream replays byte-identically.
	again := mustValidate(t, fourStageSpec())
	got, err := Run(context.Background(), again, &Env{Store: js, JobID: jobID})
	if err != nil {
		t.Fatal(err)
	}
	if got.ResumedStages != len(spec.Stages) {
		t.Fatalf("resumed_stages = %d, want %d", got.ResumedStages, len(spec.Stages))
	}
	if outputJSON(t, got.Output) != outputJSON(t, want.Output) {
		t.Fatal("replayed output differs")
	}
}

func TestRunReusesMemoPrefixAcrossJobs(t *testing.T) {
	cache := memo.New(1 << 20)
	spec := mustValidate(t, fourStageSpec())
	want, err := Run(context.Background(), spec, &Env{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if want.MemoStages != len(spec.Stages) {
		t.Fatalf("memo_stages = %d, want %d", want.MemoStages, len(spec.Stages))
	}

	// A different job with an identical upstream prefix: answered from the
	// cache, no stage re-runs.
	again := mustValidate(t, fourStageSpec())
	got, err := Run(context.Background(), again, &Env{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got.ResumedStages != len(spec.Stages) {
		t.Fatalf("resumed_stages = %d, want %d", got.ResumedStages, len(spec.Stages))
	}
	if outputJSON(t, got.Output) != outputJSON(t, want.Output) {
		t.Fatal("memo-replayed output differs")
	}

	// A job that shares only the first two stages resumes below them and
	// computes the rest.
	partial := mustValidate(t, &Spec{N: 12, Len: 40, Seed: 7,
		Stages: []StageSpec{
			{Name: StageFilter, MinLen: 4},
			{Name: StageAlign, Band: 8},
			{Name: StageReduce, Group: 6, Band: 8}, // different window ⇒ new suffix
			{Name: StageReport},
		}})
	pres, err := Run(context.Background(), partial, &Env{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if pres.ResumedStages != 2 {
		t.Fatalf("resumed_stages = %d, want 2 (shared filter+align prefix)", pres.ResumedStages)
	}
	if pres.Records != 3 { // 12 records / window 6 → 2 groups + summary
		t.Fatalf("records = %d", pres.Records)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	a, err := Run(context.Background(), mustValidate(t, fourStageSpec()), &Env{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), mustValidate(t, fourStageSpec()), &Env{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if outputJSON(t, a.Output) != outputJSON(t, b.Output) {
		t.Fatal("output depends on worker count: resume cannot be byte-identical")
	}
}

func TestMetricsSnapshotShape(t *testing.T) {
	m := NewMetrics()
	spec := mustValidate(t, fourStageSpec())
	if _, err := Run(context.Background(), spec, &Env{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Jobs != 1 || snap.Records != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	want := []string{"align", "filter", "reduce", "report", "source"} // sorted
	if len(snap.Stages) != len(want) {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	for i, name := range want {
		ss := snap.Stages[i]
		if ss.Name != name {
			t.Fatalf("stage %d = %q, want %q", i, ss.Name, name)
		}
		if ss.Out == 0 || ss.ThroughputRPS <= 0 {
			t.Fatalf("stage %s missing throughput: %+v", name, ss)
		}
		if name != "source" && ss.In == 0 {
			t.Fatalf("stage %s missing in-count: %+v", name, ss)
		}
	}
	// A second job aggregates into the same registry.
	if _, err := Run(context.Background(), spec, &Env{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if snap = m.Snapshot(); snap.Jobs != 2 {
		t.Fatalf("jobs = %d", snap.Jobs)
	}
}

func TestPrefixDigestSensitivity(t *testing.T) {
	a := mustValidate(t, fourStageSpec())
	b := mustValidate(t, fourStageSpec())
	if prefixDigest(a, 3) != prefixDigest(b, 3) {
		t.Fatal("identical specs disagree on prefix digest")
	}
	b.Stages[1].Band = 99
	if prefixDigest(a, 1) == prefixDigest(b, 1) {
		t.Fatal("band change did not change prefix digest")
	}
	if prefixDigest(a, 0) != prefixDigest(b, 0) {
		t.Fatal("downstream change altered upstream prefix")
	}
	// Timing and capacity knobs must not fragment the cache.
	c := mustValidate(t, fourStageSpec())
	c.Stages[1].DelayMicros = 1000
	c.Buffer = 64
	if prefixDigest(a, 3) != prefixDigest(c, 3) {
		t.Fatal("delay/buffer changed prefix digest")
	}
	d := mustValidate(t, fourStageSpec())
	d.Seed = 8
	if prefixDigest(a, 0) == prefixDigest(d, 0) {
		t.Fatal("source change did not change prefix digest")
	}
}
