package bio

import "sync"

// Affine gap parameters for GotohAlign (gap of length k costs
// open + k*extend).
const (
	gapOpen   = -4
	gapExtend = -1
)

// DP states of the three-matrix Gotoh recurrence.
const (
	stM = 0 // match/mismatch state
	stX = 1 // gap in b (consumes a[i])
	stY = 2 // gap in a (consumes b[j])
)

// negInf32 is the kernel's "unreachable" score. It leaves enough headroom
// below zero that drifting it by a whole sequence of gap extends
// (≤ ~50k for the 10k max job length) can never wrap or climb past a
// reachable score.
const negInf32 = int32(-1) << 28

// gotohScratch is the reusable per-call working set of the kernel: two
// rolling DP rows (3 states × (n+1) columns, int32) and one byte-packed
// traceback matrix (2 bits per state per cell, so one byte holds all
// three predecessor states of a cell). Pooling it makes steady-state
// kernel calls allocate only the result rows.
type gotohScratch struct {
	prev, cur []int32
	tb        []byte
}

var gotohPool = sync.Pool{New: func() any { return new(gotohScratch) }}

func grow32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growBytes(s []byte, n int) []byte {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]byte, n)
}

// packFrom packs the predecessor states of one cell's three DP states
// into a single traceback byte: bits 0-1 hold M's predecessor, 2-3 X's,
// 4-5 Y's.
func packFrom(fm, fx, fy int32) byte {
	return byte(fm) | byte(fx)<<2 | byte(fy)<<4
}

// GotohAlign globally aligns two sequences under an affine gap model
// (Gotoh's three-matrix algorithm): a gap of length k costs
// open + k·extend, so long indels — common in RNA evolution — are
// penalized less than the same number of scattered gaps. It returns the
// two gapped rows and the optimal score.
//
// The kernel keeps only two rolling score rows (packed [3]int32 cells)
// plus a byte-packed traceback matrix, reuses both via a sync.Pool, and
// emits the result rows into a single backing buffer — steady-state
// calls perform one allocation (see OPTIMIZATION_PLAN.md). Output is
// byte-identical to the reference implementation gotohAlignRef.
func GotohAlign(a, b Seq) (Seq, Seq, int) {
	sc := gotohPool.Get().(*gotohScratch)
	defer gotohPool.Put(sc)
	return gotohAlignScratch(a, b, sc)
}

// gotohAlignScratch is the kernel body against an explicit scratch
// buffer; kernelbench uses it with fresh scratch to measure the
// pool-less phase.
func gotohAlignScratch(a, b Seq, sc *gotohScratch) (Seq, Seq, int) {
	m, n := len(a), len(b)
	rowLen := 3 * (n + 1)
	sc.prev = grow32(sc.prev, rowLen)
	sc.cur = grow32(sc.cur, rowLen)
	sc.tb = growBytes(sc.tb, (m+1)*(n+1))
	prev, cur, tb := sc.prev, sc.cur, sc.tb

	// Row 0: only (0,0,M) and the Y edge (gap consuming b) are reachable.
	prev[stM], prev[stX], prev[stY] = 0, negInf32, negInf32
	tb[0] = 0
	for j := 1; j <= n; j++ {
		fy := int32(stY)
		if j == 1 {
			fy = stM
		}
		prev[j*3+stM] = negInf32
		prev[j*3+stX] = negInf32
		prev[j*3+stY] = int32(gapOpen + j*gapExtend)
		tb[j] = packFrom(0, 0, fy)
	}

	for i := 1; i <= m; i++ {
		// Column 0: only the X edge (gap consuming a) is reachable.
		fx := int32(stX)
		if i == 1 {
			fx = stM
		}
		cur[stM], cur[stY] = negInf32, negInf32
		cur[stX] = int32(gapOpen + i*gapExtend)
		tbRow := tb[i*(n+1) : i*(n+1)+n+1]
		tbRow[0] = packFrom(0, fx, 0)
		ai := a[i-1]
		// The left cell (this row, j-1) and the diagonal cell (previous
		// row, j-1) ride in registers across iterations: the diagonal is
		// last iteration's "up" read, the left is last iteration's
		// result, so each cell costs 3 slice reads and 3 writes.
		lM, lX, lY := cur[stM], cur[stX], cur[stY]
		dM, dX, dY := prev[stM], prev[stX], prev[stY]
		for j := 1; j <= n; j++ {
			off := j * 3
			uM, uX, uY := prev[off+stM], prev[off+stX], prev[off+stY]
			var sub int32 = mismatchScore
			if ai == b[j-1] {
				sub = matchScore
			}
			// M: diagonal from the best predecessor state (ties prefer
			// M, then X, then Y — the reference order).
			v, fm := dM, int32(stM)
			if dX > v {
				v, fm = dX, stX
			}
			if dY > v {
				v, fm = dY, stY
			}
			cM := negInf32
			if v > negInf32 {
				cM = v + sub
			}
			// X: from above — open (from M or Y) or extend (from X);
			// ties prefer opening, and prefer M over Y as the opener.
			openV, openS := uM, int32(stM)
			if uY > openV {
				openV, openS = uY, stY
			}
			cX, fxx := negInf32, int32(0)
			if openV+gapOpen+gapExtend >= uX+gapExtend {
				if openV > negInf32 {
					cX, fxx = openV+gapOpen+gapExtend, openS
				}
			} else {
				cX, fxx = uX+gapExtend, stX
			}
			// Y: from the left — open (from M or X) or extend (from Y).
			openV, openS = lM, stM
			if lX > openV {
				openV, openS = lX, stX
			}
			cY, fyy := negInf32, int32(0)
			if openV+gapOpen+gapExtend >= lY+gapExtend {
				if openV > negInf32 {
					cY, fyy = openV+gapOpen+gapExtend, openS
				}
			} else {
				cY, fyy = lY+gapExtend, stY
			}
			cur[off+stM], cur[off+stX], cur[off+stY] = cM, cX, cY
			tbRow[j] = packFrom(fm, fxx, fyy)
			dM, dX, dY = uM, uX, uY
			lM, lX, lY = cM, cX, cY
		}
		prev, cur = cur, prev
	}

	// Final cell: best of the three states, ties prefer M, then X.
	off := n * 3
	bestScore, state := prev[off+stM], stM
	if prev[off+stX] > bestScore {
		bestScore, state = prev[off+stX], stX
	}
	if prev[off+stY] > bestScore {
		bestScore, state = prev[off+stY], stY
	}

	ra, rb := gotohTraceback(a, b, tb, n+1, m, n, state)
	return ra, rb, int(bestScore)
}

// gotohTraceback walks the packed traceback matrix from (i,j) backwards,
// writing both gapped rows right-to-left into one shared backing buffer
// (the call's only steady-state allocation — no reverse pass needed).
func gotohTraceback(a, b Seq, tb []byte, stride, i, j, state int) (Seq, Seq) {
	maxLen := len(a) + len(b)
	buf := make([]byte, 2*maxLen)
	pa, pb := maxLen, 2*maxLen
	for i > 0 || j > 0 {
		next := int(tb[i*stride+j]>>(2*state)) & 3
		pa--
		pb--
		switch state {
		case stM:
			buf[pa], buf[pb] = a[i-1], b[j-1]
			i--
			j--
		case stX:
			buf[pa], buf[pb] = a[i-1], '-'
			i--
		default: // stY
			buf[pa], buf[pb] = '-', b[j-1]
			j--
		}
		state = next
	}
	return Seq(buf[pa:maxLen]), Seq(buf[maxLen+pa : 2*maxLen])
}

// SPIdentity is the sum-of-pairs identity of an alignment: the mean
// pairwise identity over all row pairs — the standard quality measure for
// a multiple alignment.
func (a Alignment) SPIdentity() float64 {
	if len(a) < 2 {
		return 1
	}
	total, pairs := 0.0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			total += a.Identity(i, j)
			pairs++
		}
	}
	return total / float64(pairs)
}
