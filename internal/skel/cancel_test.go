package skel

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to drop back to at most
// base, tolerating the runtime's own background goroutines.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d at start\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFarmCancelStopsEarly(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	tasks := make([]int, 10_000)
	var ran atomic.Int64
	_, _, err := Farm(ctx, tasks, func(int) int {
		if ran.Add(1) == 100 {
			cancel()
		}
		return 0
	}, FarmOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop the farm: ran all %d tasks", n)
	}
	settleGoroutines(t, base)
}

func TestFarmStaticCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, _, err := Farm(ctx, make([]int, 64), func(int) int { ran.Add(1); return 0 },
		FarmOptions{Workers: 2, Static: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled farm ran %d tasks", ran.Load())
	}
}

func TestTreeReduceCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(11))
	tr := randomTree(400, rng)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	_, _, err := TreeReduce(ctx, tr, func(op string, l, r int64) int64 {
		if evals.Add(1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return l + r
	}, ReduceOptions{Workers: 4, Mapper: MapRandom, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settleGoroutines(t, base)
}

func TestTreeReduceDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(12))
	tr := randomTree(256, rng)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, _, err := TreeReduce(ctx, tr, func(op string, l, r int64) int64 {
		time.Sleep(500 * time.Microsecond)
		return l + r
	}, ReduceOptions{Workers: 2, Mapper: MapStatic})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, base)
}

func TestTreeReduceUncancelledStillCorrect(t *testing.T) {
	// A background context must not change results or accounting.
	rng := rand.New(rand.NewSource(13))
	tr := randomTree(200, rng)
	want, _, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, stats, err := TreeReduce(ctx, tr, intEval, ReduceOptions{Workers: 8, Mapper: MapRandom, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("value = %d, want %d", got, want)
	}
	if stats.TotalUnits() != int64(tr.Nodes()-tr.Leaves()) {
		t.Fatalf("units = %d, want %d", stats.TotalUnits(), tr.Nodes()-tr.Leaves())
	}
}

func TestDivideConquerCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := DivideConquer(ctx, 30,
		func(n int) bool { return n < 2 },
		func(n int) int {
			if calls.Add(1) == 10 {
				cancel()
			}
			return n
		},
		func(n int) []int { return []int{n - 1, n - 2} },
		func(_ int, rs []int) int { return rs[0] + rs[1] },
		DCOptions{Parallel: 4, Depth: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settleGoroutines(t, base)
}
