package jobs

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/memo"
	"repro/internal/skel"
)

// Sort engine bounds.
const (
	maxSortN          = 1 << 21
	maxSortCkptDepth  = 6
	maxSortCostMicros = 100_000
	sortBaseSpan      = 4096
)

// SortSpec describes a divide-and-conquer mergesort over a deterministic
// synthetic key set — the DC/sorting motif as a served workload. The
// division is the midpoint split, so the path tree ("", "0", "1", "0.1",
// ...) is stable across runs and checkpointed subtree results from a
// previous life resume exactly.
type SortSpec struct {
	// N is the key count (default 65536, max 1<<21).
	N int `json:"n,omitempty"`
	// Seed derives the key set.
	Seed int64 `json:"seed,omitempty"`
	// Dist selects the input distribution: "uniform" (default), "sorted",
	// "reverse", or "runs" (concatenated sorted runs).
	Dist string `json:"dist,omitempty"`
	// CheckpointDepth journals merged subtree results for division paths of
	// depth ≤ this (0 = no checkpoints; max 6). Timing-only: the sorted
	// output is identical with or without checkpoints.
	CheckpointDepth int `json:"checkpoint_depth,omitempty"`
	// MergeCostMicros sleeps this long in every combine (max 100ms) — the
	// crash-window knob for recovery tests.
	MergeCostMicros int64 `json:"merge_cost_us,omitempty"`
}

// Validate normalizes the spec in place and rejects malformed fields.
func (s *SortSpec) Validate() error {
	if s.N == 0 {
		s.N = 1 << 16
	}
	if s.N < 1 || s.N > maxSortN {
		return fmt.Errorf("sort n out of range: %d", s.N)
	}
	switch s.Dist {
	case "":
		s.Dist = "uniform"
	case "uniform", "sorted", "reverse", "runs":
	default:
		return fmt.Errorf("unknown sort dist %q (want uniform, sorted, reverse, or runs)", s.Dist)
	}
	if s.CheckpointDepth < 0 || s.CheckpointDepth > maxSortCkptDepth {
		return fmt.Errorf("sort checkpoint_depth out of range: %d", s.CheckpointDepth)
	}
	if s.MergeCostMicros < 0 || s.MergeCostMicros > maxSortCostMicros {
		return fmt.Errorf("sort merge_cost_us out of range: %d", s.MergeCostMicros)
	}
	return nil
}

// SortResult is the outcome of a sort job.
type SortResult struct {
	N int `json:"n"`
	// Checksum digests the sorted key sequence — the determinism witness.
	Checksum string `json:"checksum"`
	// Sorted is the engine's own verification pass over the output.
	Sorted bool `json:"sorted"`
	// Units counts elements written by merge steps this run performed.
	Units int64 `json:"units"`
	// ResumedPaths counts subtree results restored from journaled
	// checkpoints instead of re-merged; a cold run reports 0.
	ResumedPaths int64 `json:"resumed_paths,omitempty"`
}

// keys materializes the deterministic input.
func (s *SortSpec) keys() []uint64 {
	rng := rand.New(rand.NewSource(s.Seed))
	xs := make([]uint64, s.N)
	switch s.Dist {
	case "sorted":
		v := uint64(0)
		for i := range xs {
			v += uint64(rng.Intn(8))
			xs[i] = v
		}
	case "reverse":
		v := uint64(s.N) * 8
		for i := range xs {
			v -= uint64(rng.Intn(8))
			xs[i] = v
		}
	case "runs":
		run := s.N / 16
		if run < 1 {
			run = 1
		}
		for i := 0; i < len(xs); i += run {
			v := uint64(rng.Uint32())
			for j := i; j < i+run && j < len(xs); j++ {
				v += uint64(rng.Intn(16))
				xs[j] = v
			}
		}
	default: // uniform
		for i := range xs {
			xs[i] = rng.Uint64()
		}
	}
	return xs
}

func encodeKeys(xs []uint64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return buf
}

func decodeKeys(buf []byte) ([]uint64, bool) {
	if len(buf)%8 != 0 {
		return nil, false
	}
	xs := make([]uint64, len(buf)/8)
	for i := range xs {
		xs[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return xs, true
}

// pathDepth is the division-path depth: 0 for the root, 1 for "0"/"1", ...
func pathDepth(path string) int {
	if path == "" {
		return 0
	}
	return strings.Count(path, ".") + 1
}

// RunSort executes the mergesort workload through skel.DivideConquer,
// journaling shallow subtree results as checkpoints and resuming them on a
// restarted run.
func RunSort(ctx context.Context, spec *SortSpec, env *Env) (*SortResult, error) {
	xs := spec.keys()
	var units, resumed atomic.Int64
	cost := time.Duration(spec.MergeCostMicros) * time.Microsecond

	type span struct{ lo, hi int }
	opts := skel.DCOptions{Parallel: env.workers(), Depth: 6}
	if spec.CheckpointDepth > 0 && env != nil && env.Checkpoint != nil {
		depth := spec.CheckpointDepth
		opts.Checkpoint = func(path string, v any) {
			if pathDepth(path) > depth {
				return
			}
			if keys, ok := v.([]uint64); ok {
				env.Checkpoint("p:"+path, []byte(base64.StdEncoding.EncodeToString(encodeKeys(keys))))
			}
		}
	}
	if env != nil && env.Resume != nil {
		opts.Resume = func(path string) (any, bool) {
			blob, ok := env.Resume("p:" + path)
			if !ok {
				return nil, false
			}
			raw, err := base64.StdEncoding.DecodeString(string(blob))
			if err != nil {
				return nil, false
			}
			keys, ok := decodeKeys(raw)
			if !ok {
				return nil, false
			}
			resumed.Add(1)
			return keys, true
		}
	}

	out, err := skel.DivideConquer(
		ctx,
		span{0, len(xs)},
		func(s span) bool { return s.hi-s.lo <= sortBaseSpan },
		func(s span) []uint64 {
			res := make([]uint64, s.hi-s.lo)
			copy(res, xs[s.lo:s.hi])
			sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
			units.Add(int64(len(res)))
			return res
		},
		func(s span) []span {
			mid := (s.lo + s.hi) / 2
			return []span{{s.lo, mid}, {mid, s.hi}}
		},
		func(_ span, parts [][]uint64) []uint64 {
			if cost > 0 {
				time.Sleep(cost)
			}
			merged := mergeKeys(parts[0], parts[1])
			units.Add(int64(len(merged)))
			return merged
		},
		opts,
	)
	if err != nil {
		return nil, err
	}
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			sorted = false
			break
		}
	}
	key := memo.Leaf("jobs.sort", encodeKeys(out))
	return &SortResult{
		N:            len(out),
		Checksum:     hex.EncodeToString(key[:8]),
		Sorted:       sorted,
		Units:        units.Load(),
		ResumedPaths: resumed.Load(),
	}, nil
}

func mergeKeys(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// DigestFields returns the canonical digest input for sort jobs: the
// sorted output is a pure function of (n, seed, dist); checkpoint cadence
// and merge cost shape timing only.
func (s *SortSpec) DigestFields() [][]byte {
	var nums [16]byte
	binary.BigEndian.PutUint64(nums[0:], uint64(int64(s.N)))
	binary.BigEndian.PutUint64(nums[8:], uint64(s.Seed))
	return [][]byte{nums[:], []byte(s.Dist)}
}
