#!/bin/sh
# Motif-jobs smoke test for the search/grid/sort job types, run by CI and
# `make motif-jobs-smoke`. Two phases:
#
#   A. Standalone motifd with -store: submit one grid job (tolerance
#      convergence), one sort job, and one FirstOnly search whose settle
#      window holds it open after the shortcircuit decision is journaled.
#      SIGKILL the daemon inside that window, restart it on the same store
#      directory, and assert the resumed search honors the journaled
#      decision: same solution, resumed_decision=true, zero re-explored
#      units.
#
#   B. Cluster: motifctl with -store plus two workers. Submit a FirstOnly
#      search, wait for the coordinator to harvest the decision record off
#      a status poll, SIGKILL the worker holding the job, and assert the
#      retry is a no-op — the job completes from the harvested decision
#      (decision_completions=1, retries=0) without re-placing.
set -eu

D_ADDR=127.0.0.1:18190
COORD_ADDR=127.0.0.1:18191
W1_ADDR=127.0.0.1:18192
W2_ADDR=127.0.0.1:18193
COORD="http://$COORD_ADDR"
TMP="$(mktemp -d)"
DPID= CPID= W1PID= W2PID=
trap 'kill -9 "$DPID" "$CPID" "$W1PID" "$W2PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/motifd" ./cmd/motifd
go build -o "$TMP/motifctl" ./cmd/motifctl

json_path() { # json_path FILE DOTTED.PATH -> value (asserts valid JSON)
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
for part in sys.argv[2].split("."):
    doc = doc[int(part)] if isinstance(doc, list) else doc[part]
print(doc)' "$1" "$2"
}

wait_up() { # wait_up URL NAME LOG
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "$2 did not come up; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_done() { # wait_done BASEURL JOBID -> job.json filled
    i=0
    while :; do
        CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "$1/v1/jobs/$2")"
        [ "$CODE" = 200 ] || { echo "poll $2 returned $CODE" >&2; exit 1; }
        STATE="$(json_path "$TMP/job.json" state)"
        case "$STATE" in
        done) return 0 ;;
        error) echo "job $2 failed:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
        esac
        i=$((i + 1))
        [ "$i" -lt 600 ] || { echo "job $2 stuck in $STATE" >&2; exit 1; }
        sleep 0.05
    done
}

submit() { # submit BASEURL JSON -> prints job id
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$1/v1/jobs" \
        -H 'Content-Type: application/json' -d "$2")"
    [ "$CODE" = 202 ] || { echo "submit returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    json_path "$TMP/submit.json" id
}

# ---------- Phase A: all three types against one motifd, kill mid-search ----------

"$TMP/motifd" -addr "$D_ADDR" -procs 2 -inner 2 -store "$TMP/d-store" 2>"$TMP/d1.log" &
DPID=$!
wait_up "http://$D_ADDR" motifd "$TMP/d1.log"

# Grid: boundary-driven relaxation that must converge under its tolerance.
GID="$(submit "http://$D_ADDR" '{"type":"grid","grid":{"rows":32,"cols":32,"iterations":20000,"tolerance":1e-4}}')"
wait_done "http://$D_ADDR" "$GID"
CONV="$(json_path "$TMP/job.json" grid.converged)"
GSUM="$(json_path "$TMP/job.json" grid.checksum)"
[ "$CONV" = "True" ] || { echo "grid did not converge" >&2; cat "$TMP/job.json" >&2; exit 1; }
[ -n "$GSUM" ] || { echo "grid checksum empty" >&2; exit 1; }
echo "grid job: converged with checksum $GSUM"

# Sort: divide-and-conquer mergesort, self-verifying.
SID="$(submit "http://$D_ADDR" '{"type":"sort","sort":{"n":65536,"seed":7}}')"
wait_done "http://$D_ADDR" "$SID"
SORTED="$(json_path "$TMP/job.json" sort.sorted)"
[ "$SORTED" = "True" ] || { echo "sort output not sorted" >&2; cat "$TMP/job.json" >&2; exit 1; }
echo "sort job: 65536 keys sorted, checksum $(json_path "$TMP/job.json" sort.checksum)"

# FirstOnly search: the settle window holds the job open after the
# shortcircuit decision hits the WAL, so the SIGKILL below lands between
# commitment and completion — the hard case.
JID="$(submit "http://$D_ADDR" '{"type":"search","search":{"pattern":"ACGUACGU","seqs":8,"seq_len":4096,"seed":3,"max_mismatches":2,"first_only":true,"node_cost_us":200,"settle_ms":9000}}')"

# Wait until the running job surfaces its decision record, then capture
# the journaled winner.
i=0
while :; do
    curl -sf "http://$D_ADDR/v1/jobs/$JID" >"$TMP/job.json"
    if json_path "$TMP/job.json" decision.reason >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    [ "$i" -lt 600 ] || { echo "search never journaled a decision" >&2; cat "$TMP/job.json" >&2; exit 1; }
    sleep 0.05
done
REASON="$(json_path "$TMP/job.json" decision.reason)"
[ "$REASON" = shortcircuit ] || { echo "decision reason $REASON, want shortcircuit" >&2; exit 1; }
WANT_SEQ="$(json_path "$TMP/job.json" decision.data.seq_index)"
WANT_POS="$(json_path "$TMP/job.json" decision.data.pos)"
STATE="$(json_path "$TMP/job.json" state)"
[ "$STATE" = running ] || { echo "search already $STATE before the kill (settle window too short)" >&2; exit 1; }

kill -9 "$DPID"
echo "killed motifd (SIGKILL) with shortcircuit decision journaled (winner seq=$WANT_SEQ pos=$WANT_POS)"

"$TMP/motifd" -addr "$D_ADDR" -procs 2 -inner 2 -store "$TMP/d-store" 2>"$TMP/d2.log" &
DPID=$!
wait_up "http://$D_ADDR" motifd-restarted "$TMP/d2.log"

# The resumed search must honor the journaled decision: identical winner,
# marked resumed, zero units re-explored.
wait_done "http://$D_ADDR" "$JID"
GOT_SEQ="$(json_path "$TMP/job.json" search.matches.0.seq_index)"
GOT_POS="$(json_path "$TMP/job.json" search.matches.0.pos)"
RESUMED="$(json_path "$TMP/job.json" search.resumed_decision)"
UNITS="$(json_path "$TMP/job.json" search.units)"
[ "$GOT_SEQ" = "$WANT_SEQ" ] && [ "$GOT_POS" = "$WANT_POS" ] ||
    { echo "resumed search changed the winner: got seq=$GOT_SEQ pos=$GOT_POS, want seq=$WANT_SEQ pos=$WANT_POS" >&2; exit 1; }
[ "$RESUMED" = "True" ] || { echo "resumed search not marked resumed_decision" >&2; cat "$TMP/job.json" >&2; exit 1; }
[ "$UNITS" = 0 ] || { echo "resumed search re-explored $UNITS units, want 0" >&2; exit 1; }
curl -sf "http://$D_ADDR/metrics" >"$TMP/metrics.json"
RD="$(json_path "$TMP/metrics.json" motif.search.resumed_decisions)"
[ "$RD" -ge 1 ] || { echo "motif.search.resumed_decisions=$RD, want >= 1" >&2; exit 1; }
echo "resumed search honored the decision: same winner, resumed_decision=true, units=0"

kill -TERM "$DPID"
i=0
while kill -0 "$DPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "motifd did not drain" >&2; cat "$TMP/d2.log" >&2; exit 1; }
    sleep 0.1
done
echo "phase A (motifd decision durability): OK"

# ---------- Phase B: coordinator harvests the decision, worker death is a no-op retry ----------

"$TMP/motifctl" -addr "$COORD_ADDR" -heartbeat 100ms -store "$TMP/coord-store" \
    -lease-ttl 500ms 2>"$TMP/motifctl.log" &
CPID=$!
"$TMP/motifd" -addr "$W1_ADDR" -procs 1 -inner 1 -id w1 \
    -coordinator "$COORD" -advertise "http://$W1_ADDR" 2>"$TMP/w1.log" &
W1PID=$!
"$TMP/motifd" -addr "$W2_ADDR" -procs 1 -inner 1 -id w2 \
    -coordinator "$COORD" -advertise "http://$W2_ADDR" 2>"$TMP/w2.log" &
W2PID=$!
wait_up "$COORD" motifctl "$TMP/motifctl.log"
wait_up "http://$W1_ADDR" w1 "$TMP/w1.log"
wait_up "http://$W2_ADDR" w2 "$TMP/w2.log"
i=0
while :; do
    curl -sf "$COORD/metrics" >"$TMP/metrics.json"
    LIVE="$(json_path "$TMP/metrics.json" live_workers)"
    [ "$LIVE" = 2 ] && break
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "workers never registered (live=$LIVE)" >&2; exit 1; }
    sleep 0.1
done
echo "cluster up: 2 workers registered"

CJID="$(submit "$COORD" '{"type":"search","search":{"pattern":"ACGUACGU","seqs":8,"seq_len":4096,"seed":3,"max_mismatches":2,"first_only":true,"node_cost_us":200,"settle_ms":9000}}')"

# Wait for the coordinator to harvest the decision off a status poll.
i=0
while :; do
    curl -sf "$COORD/metrics" >"$TMP/metrics.json"
    HARVESTED="$(json_path "$TMP/metrics.json" decisions_harvested 2>/dev/null || echo 0)"
    [ "$HARVESTED" -ge 1 ] && break
    i=$((i + 1))
    [ "$i" -lt 600 ] || { echo "coordinator never harvested the decision" >&2; cat "$TMP/metrics.json" >&2; exit 1; }
    sleep 0.05
done
curl -sf "$COORD/v1/jobs/$CJID" >"$TMP/job.json"
WORKER="$(json_path "$TMP/job.json" worker_id)"
CWANT_SEQ="$(json_path "$TMP/job.json" decision.data.seq_index)"
CWANT_POS="$(json_path "$TMP/job.json" decision.data.pos)"

# SIGKILL the worker holding the terminated-but-settling search.
case "$WORKER" in
w1) kill -9 "$W1PID" ;;
w2) kill -9 "$W2PID" ;;
*) echo "job on unknown worker $WORKER" >&2; exit 1 ;;
esac
echo "killed worker $WORKER (SIGKILL) after decision harvest"

# The retry must be a no-op: done from the harvested decision, same
# winner, no re-placement on the surviving worker.
wait_done "$COORD" "$CJID"
CGOT_SEQ="$(json_path "$TMP/job.json" search.matches.0.seq_index)"
CGOT_POS="$(json_path "$TMP/job.json" search.matches.0.pos)"
CRESUMED="$(json_path "$TMP/job.json" search.resumed_decision)"
[ "$CGOT_SEQ" = "$CWANT_SEQ" ] && [ "$CGOT_POS" = "$CWANT_POS" ] ||
    { echo "cluster retry changed the winner: got seq=$CGOT_SEQ pos=$CGOT_POS, want seq=$CWANT_SEQ pos=$CWANT_POS" >&2; exit 1; }
[ "$CRESUMED" = "True" ] || { echo "cluster job not completed from the decision" >&2; cat "$TMP/job.json" >&2; exit 1; }
curl -sf "$COORD/metrics" >"$TMP/metrics.json"
COMPLETIONS="$(json_path "$TMP/metrics.json" decision_completions)"
RETRIES="$(json_path "$TMP/metrics.json" retries)"
[ "$COMPLETIONS" -ge 1 ] || { echo "decision_completions=$COMPLETIONS, want >= 1" >&2; exit 1; }
[ "$RETRIES" = 0 ] || { echo "retries=$RETRIES, want 0 (terminated-search retry must be a no-op)" >&2; exit 1; }
echo "cluster retry was a no-op: completed from harvested decision (completions=$COMPLETIONS, retries=$RETRIES)"

kill -TERM "$CPID"
i=0
while kill -0 "$CPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "motifctl did not drain" >&2; cat "$TMP/motifctl.log" >&2; exit 1; }
    sleep 0.1
done
echo "phase B (cluster decision harvest): OK"
echo "motif jobs smoke: OK"
