#!/bin/sh
# Crash-recovery smoke test for the durable job store, run by CI and
# `make recovery-smoke`. Two phases:
#
#   A. Cluster: start motifctl with -store and two workers, submit a batch
#      with client request ids, SIGKILL the coordinator mid-batch, restart
#      it against the same store directory, and assert zero lost jobs
#      (every accepted id completes) and zero duplicated jobs (resubmitting
#      every request id answers with the original job).
#
#   B. Checkpoint resume: start a standalone motifd with -store, submit a
#      slow tree reduction, SIGKILL the daemon once checkpoints have been
#      journaled, restart it, and assert the resumed run re-evaluates
#      strictly fewer nodes than a cold run with a positive checkpoint
#      hit-rate in /metrics.
set -eu

COORD_ADDR=127.0.0.1:18170
W1_ADDR=127.0.0.1:18181
W2_ADDR=127.0.0.1:18182
D_ADDR=127.0.0.1:18178
COORD="http://$COORD_ADDR"
JOBS=16
TMP="$(mktemp -d)"
CPID= W1PID= W2PID= DPID=
trap 'kill -9 "$CPID" "$W1PID" "$W2PID" "$DPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/motifctl" ./cmd/motifctl
go build -o "$TMP/motifd" ./cmd/motifd

json_path() { # json_path FILE DOTTED.PATH -> value (asserts valid JSON)
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
for part in sys.argv[2].split("."):
    doc = doc[part]
print(doc)' "$1" "$2"
}

wait_up() { # wait_up URL NAME LOG
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "$2 did not come up; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_workers() { # wait_workers N — poll the coordinator until N workers are live
    i=0
    while :; do
        curl -sf "$COORD/metrics" >"$TMP/metrics.json"
        LIVE="$(json_path "$TMP/metrics.json" live_workers)"
        [ "$LIVE" = "$1" ] && break
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "workers never registered (live=$LIVE, want $1)" >&2; cat "$TMP/motifctl.log" >&2; exit 1; }
        sleep 0.1
    done
}

# ---------- Phase A: coordinator crash + restart, zero lost / duplicated ----------

"$TMP/motifctl" -addr "$COORD_ADDR" -heartbeat 100ms -store "$TMP/coord-store" \
    -lease-ttl 500ms 2>"$TMP/motifctl.log" &
CPID=$!
"$TMP/motifd" -addr "$W1_ADDR" -procs 1 -inner 1 -id w1 \
    -coordinator "$COORD" -advertise "http://$W1_ADDR" 2>"$TMP/w1.log" &
W1PID=$!
"$TMP/motifd" -addr "$W2_ADDR" -procs 1 -inner 1 -id w2 \
    -coordinator "$COORD" -advertise "http://$W2_ADDR" 2>"$TMP/w2.log" &
W2PID=$!

wait_up "$COORD" motifctl "$TMP/motifctl.log"
wait_up "http://$W1_ADDR" w1 "$TMP/w1.log"
wait_up "http://$W2_ADDR" w2 "$TMP/w2.log"
wait_workers 2
echo "cluster up: 2 workers registered"

# Submit the batch with client request ids; every submission must be
# accepted and journaled (202 only after the WAL fsync).
: >"$TMP/ids"
j=0
while [ "$j" -lt "$JOBS" ]; do
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$COORD/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d "{\"type\":\"tree\",\"id\":\"batch-$j\",\"tree\":{\"leaves\":64,\"node_cost_us\":3000,\"seed\":$j}}")"
    [ "$CODE" = 202 ] || { echo "submit $j returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    json_path "$TMP/submit.json" id >>"$TMP/ids"
    j=$((j + 1))
done
echo "submitted $JOBS jobs with request ids"

# Let a little of the batch finish so the kill lands mid-run: some jobs
# done, some placed, some still queued.
i=0
while :; do
    curl -sf "$COORD/metrics" >"$TMP/metrics.json"
    DONE="$(json_path "$TMP/metrics.json" done)"
    [ "$DONE" -ge 2 ] && break
    i=$((i + 1))
    [ "$i" -lt 200 ] || { echo "no jobs finished before the kill (done=$DONE)" >&2; exit 1; }
    sleep 0.05
done

# Crash the coordinator: SIGKILL, no drain, no store close.
kill -9 "$CPID"
echo "killed motifctl (SIGKILL) with done=$DONE of $JOBS"

# Restart against the same store directory. The dead coordinator's store
# lease must first go stale (it stops renewing at SIGKILL but stays fresh
# for up to a TTL), then the log replays: finished jobs stay pollable,
# orphans are re-placed once the workers re-register.
sleep 0.8
"$TMP/motifctl" -addr "$COORD_ADDR" -heartbeat 100ms -store "$TMP/coord-store" \
    -lease-ttl 500ms 2>"$TMP/motifctl2.log" &
CPID=$!
wait_up "$COORD" motifctl-restarted "$TMP/motifctl2.log"
curl -sf "$COORD/metrics" >"$TMP/metrics.json"
REPLAYED="$(json_path "$TMP/metrics.json" store.replayed_records)"
[ "$REPLAYED" -gt 0 ] || { echo "restarted coordinator replayed nothing" >&2; exit 1; }
echo "coordinator restarted: replayed $REPLAYED records"
wait_workers 2

# Zero lost: every accepted id must reach done under its original id.
while read -r ID; do
    i=0
    while :; do
        CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "$COORD/v1/jobs/$ID")"
        [ "$CODE" = 200 ] || { echo "poll $ID returned $CODE after restart" >&2; exit 1; }
        STATE="$(json_path "$TMP/job.json" state)"
        case "$STATE" in
        done) break ;;
        error) echo "job $ID lost to the crash:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
        esac
        i=$((i + 1))
        [ "$i" -lt 600 ] || { echo "job $ID stuck in $STATE after restart" >&2; exit 1; }
        sleep 0.05
    done
done <"$TMP/ids"
echo "all $JOBS journaled jobs completed after the crash"

# Zero duplicated: resubmitting every request id must answer with the
# original job, not start a fresh execution.
j=0
while [ "$j" -lt "$JOBS" ]; do
    WANT="$(sed -n "$((j + 1))p" "$TMP/ids")"
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$COORD/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d "{\"type\":\"tree\",\"id\":\"batch-$j\",\"tree\":{\"leaves\":64,\"node_cost_us\":3000,\"seed\":$j}}")"
    [ "$CODE" = 202 ] || { echo "resubmit $j returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    GOT="$(json_path "$TMP/submit.json" id)"
    [ "$GOT" = "$WANT" ] || { echo "resubmit batch-$j got $GOT, want $WANT (duplicated job)" >&2; exit 1; }
    j=$((j + 1))
done
curl -sf "$COORD/metrics" >"$TMP/metrics.json"
FAILED="$(json_path "$TMP/metrics.json" failed)"
DEDUPED="$(json_path "$TMP/metrics.json" deduped)"
[ "$FAILED" = 0 ] || { echo "failed=$FAILED after recovery, want 0" >&2; cat "$TMP/metrics.json" >&2; exit 1; }
[ "$DEDUPED" -ge "$JOBS" ] || { echo "deduped=$DEDUPED, want >= $JOBS" >&2; exit 1; }
echo "idempotent resubmission: all $JOBS request ids answered by their original jobs (deduped=$DEDUPED, failed=0)"

# Drain the restarted coordinator and the workers.
kill -TERM "$CPID"
i=0
while kill -0 "$CPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "restarted motifctl did not drain" >&2; cat "$TMP/motifctl2.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/motifctl2.log" || { echo "no drain line in motifctl2 log:" >&2; cat "$TMP/motifctl2.log" >&2; exit 1; }
kill -TERM "$W1PID" "$W2PID"
i=0
while kill -0 "$W1PID" 2>/dev/null || kill -0 "$W2PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "workers did not drain" >&2; exit 1; }
    sleep 0.1
done
echo "phase A (cluster crash recovery): OK"

# ---------- Phase B: checkpointed reduction resumes past the crash ----------

"$TMP/motifd" -addr "$D_ADDR" -procs 1 -inner 1 -store "$TMP/d-store" 2>"$TMP/d1.log" &
DPID=$!
wait_up "http://$D_ADDR" motifd "$TMP/d1.log"

# One slow reduction: 64 leaves at 20ms per node keeps the run alive long
# enough for checkpoints to reach the WAL before the kill.
CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "http://$D_ADDR/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"type":"tree","id":"resume-1","tree":{"leaves":64,"node_cost_us":20000,"seed":1}}')"
[ "$CODE" = 202 ] || { echo "phase B submit returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
JID="$(json_path "$TMP/submit.json" id)"

# Wait until a meaningful number of checkpoints are durably journaled,
# then SIGKILL the daemon mid-reduction.
i=0
while :; do
    curl -sf "http://$D_ADDR/metrics" >"$TMP/metrics.json"
    CKPTS="$(json_path "$TMP/metrics.json" store.checkpoint_writes)"
    [ "$CKPTS" -ge 5 ] && break
    i=$((i + 1))
    [ "$i" -lt 200 ] || { echo "no checkpoints journaled before the kill (writes=$CKPTS)" >&2; exit 1; }
    sleep 0.05
done
kill -9 "$DPID"
echo "killed motifd (SIGKILL) with $CKPTS checkpoints journaled"

"$TMP/motifd" -addr "$D_ADDR" -procs 1 -inner 1 -store "$TMP/d-store" 2>"$TMP/d2.log" &
DPID=$!
wait_up "http://$D_ADDR" motifd-restarted "$TMP/d2.log"

# The recovered job must finish from its checkpoints: right state, fewer
# node evaluations than the 63-internal-node cold run.
i=0
while :; do
    CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "http://$D_ADDR/v1/jobs/$JID")"
    [ "$CODE" = 200 ] || { echo "poll $JID returned $CODE after restart" >&2; exit 1; }
    STATE="$(json_path "$TMP/job.json" state)"
    case "$STATE" in
    done) break ;;
    error) echo "resumed job failed:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
    esac
    i=$((i + 1))
    [ "$i" -lt 600 ] || { echo "resumed job stuck in $STATE" >&2; exit 1; }
    sleep 0.05
done
RESUMED="$(json_path "$TMP/job.json" tree.resumed_nodes)"
UNITS="$(json_path "$TMP/job.json" tree.units)"
[ "$RESUMED" -gt 0 ] || { echo "resumed_nodes=$RESUMED: the reduction ignored its checkpoints" >&2; cat "$TMP/job.json" >&2; exit 1; }
[ "$UNITS" -lt 63 ] || { echo "resumed run evaluated $UNITS nodes, no fewer than a cold run (63)" >&2; exit 1; }
curl -sf "http://$D_ADDR/metrics" >"$TMP/metrics.json"
HITS="$(json_path "$TMP/metrics.json" store.checkpoint_hits)"
[ "$HITS" -gt 0 ] || { echo "store.checkpoint_hits=$HITS, want > 0" >&2; exit 1; }
echo "resumed reduction: units=$UNITS of 63, resumed_nodes=$RESUMED, checkpoint_hits=$HITS"

kill -TERM "$DPID"
i=0
while kill -0 "$DPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "restarted motifd did not drain" >&2; cat "$TMP/d2.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/d2.log" || { echo "no drain line in d2 log:" >&2; cat "$TMP/d2.log" >&2; exit 1; }
echo "phase B (checkpoint resume): OK"
echo "recovery smoke: OK"
