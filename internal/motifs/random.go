package motifs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/term"
)

// Rand returns the Rand motif: an empty library plus the transformation
// supporting the @random pragma (Section 3.3):
//
//  1. replace each call P@random by the sequence
//     nodes(N), rand_num(N, R), send(R, P)
//     so the process is sent, as a message, to a randomly selected server;
//  2. augment the program with a server/1 definition containing one rule
//     for each process type annotated @random, one for each declared entry
//     point (the processes used to initiate execution via the server
//     network), and one for the halt message.
//
// entryPoints are "name/arity" indicators of initiating processes whose
// messages the generated server must also accept (the paper's "process used
// to initiate execution of the application").
func Rand(entryPoints ...string) *core.Motif {
	t := core.TransformFunc{
		N: "rand",
		F: func(prog *parser.Program, h *term.Heap) (*parser.Program, error) {
			return randTransform(prog, h, entryPoints)
		},
	}
	return core.NewMotif("rand", t, nil)
}

// Random returns the composed Random motif of Section 3.3:
// Random = Server ∘ Rand.
func Random(entryPoints ...string) core.Applier {
	return core.Compose(Server(), Rand(entryPoints...))
}

func randTransform(prog *parser.Program, h *term.Heap, entryPoints []string) (*parser.Program, error) {
	if prog.Defines("server/1") {
		return nil, fmt.Errorf("rand motif: application already defines server/1; compose differently or rename")
	}
	annotated := core.AnnotatedIndicators(prog, "random")

	out, err := core.RewriteAnnotations(prog, h,
		func(goal, target term.Term, h *term.Heap) ([]term.Term, bool, error) {
			a, ok := term.Walk(target).(term.Atom)
			if !ok || a != "random" {
				return nil, false, nil
			}
			n := h.NewVar("N")
			r := h.NewVar("R")
			return []term.Term{
				term.NewCompound("nodes", n),
				term.NewCompound("rand_num", n, r),
				term.NewCompound("send", r, term.Walk(goal)),
			}, true, nil
		})
	if err != nil {
		return nil, err
	}

	// Deterministic rule order: annotated indicators sorted, then entry
	// points in declaration order (skipping duplicates), then halt.
	var inds []string
	for ind := range annotated {
		inds = append(inds, ind)
	}
	sort.Strings(inds)
	for _, e := range entryPoints {
		if !annotated[e] {
			inds = append(inds, e)
		}
	}
	seen := map[string]bool{}
	for _, ind := range inds {
		if seen[ind] {
			continue
		}
		seen[ind] = true
		r, err := serverDispatchRule(ind, h)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, r)
	}
	out.Rules = append(out.Rules, serverHaltRule(h))
	return out, nil
}

// serverDispatchRule builds
//
//	server([p(V1,...,Vn)|In]) :- p(V1,...,Vn), server(In).
func serverDispatchRule(indicator string, h *term.Heap) (*parser.Rule, error) {
	name, arity, err := SplitIndicator(indicator)
	if err != nil {
		return nil, err
	}
	args := make([]term.Term, arity)
	for i := range args {
		args[i] = h.NewVar("V")
	}
	msg := term.NewCompound(name, args...)
	in := h.NewVar("In")
	return &parser.Rule{
		Head: term.NewCompound("server", term.Cons(msg, in)),
		Body: []term.Term{msg, term.NewCompound("server", in)},
	}, nil
}

// serverHaltRule builds server([halt|_]).
func serverHaltRule(h *term.Heap) *parser.Rule {
	return &parser.Rule{
		Head: term.NewCompound("server", term.Cons(term.Atom("halt"), h.NewVar("_"))),
	}
}

// SplitIndicator parses "name/arity".
func SplitIndicator(ind string) (string, int, error) {
	i := strings.LastIndex(ind, "/")
	if i <= 0 {
		return "", 0, fmt.Errorf("bad indicator %q", ind)
	}
	n, err := strconv.Atoi(ind[i+1:])
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("bad indicator %q", ind)
	}
	return ind[:i], n, nil
}
