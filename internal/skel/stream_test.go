package skel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// send is the sending discipline StreamStage implementations owe the
// pipeline: never block on a full channel past cancellation.
func send[T any](ctx context.Context, out chan<- T, v T) bool {
	select {
	case out <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

func TestStreamPipelineOrderAndCompleteness(t *testing.T) {
	const n = 500
	var got []int
	err := StreamPipeline(context.Background(), 4,
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for i := 0; i < n; i++ {
				if !send(ctx, out, i) {
					return ctx.Err()
				}
			}
			return nil
		},
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for v := range in {
				if !send(ctx, out, v*2) {
					return ctx.Err()
				}
			}
			return nil
		},
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for v := range in {
				got = append(got, v)
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d records, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("record %d = %d, want %d (order not preserved)", i, v, i*2)
		}
	}
}

func TestStreamPipelineBackpressure(t *testing.T) {
	// A slow sink must bound how far ahead the source can run: with depth d
	// and s stages, at most d records per channel plus one in each stage's
	// hands can be in flight.
	const depth = 2
	var produced, consumed atomic.Int64
	var maxAhead int64
	err := StreamPipeline(context.Background(), depth,
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for i := 0; i < 200; i++ {
				if !send(ctx, out, i) {
					return ctx.Err()
				}
				if ahead := produced.Add(1) - consumed.Load(); ahead > maxAhead {
					maxAhead = ahead
				}
			}
			return nil
		},
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for v := range in {
				if !send(ctx, out, v) {
					return ctx.Err()
				}
			}
			return nil
		},
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for range in {
				time.Sleep(200 * time.Microsecond)
				consumed.Add(1)
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 3 stages, 3 channels (incl. tail) of depth 2, plus one record in each
	// stage's hands: 9 in flight is the ceiling; allow one of slack for the
	// race between the Add and the Load.
	if limit := int64(3*(depth+1) + 1); maxAhead > limit {
		t.Fatalf("source ran %d records ahead of the sink (bound %d): channel hand-off is not backpressured", maxAhead, limit)
	}
}

func TestStreamPipelineCancelReleasesBlockedStages(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- StreamPipeline(ctx, 1,
			func(ctx context.Context, in <-chan int, out chan<- int) error {
				for i := 0; ; i++ {
					if !send(ctx, out, i) {
						return ctx.Err()
					}
				}
			},
			func(ctx context.Context, in <-chan int, out chan<- int) error {
				<-started // never reads until cancelled: upstream fills and blocks
				<-ctx.Done()
				return ctx.Err()
			},
		)
	}()
	time.Sleep(10 * time.Millisecond) // let the source fill the bounded channel
	cancel()
	close(started)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not unwind after cancel")
	}
	settleGoroutines(t, base)
}

func TestStreamPipelineStageErrorAborts(t *testing.T) {
	boom := errors.New("stage failure")
	var produced atomic.Int64
	err := StreamPipeline(context.Background(), 2,
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for i := 0; ; i++ {
				if !send(ctx, out, i) {
					return ctx.Err()
				}
				produced.Add(1)
			}
		},
		func(ctx context.Context, in <-chan int, out chan<- int) error {
			for v := range in {
				if v == 5 {
					return boom
				}
			}
			return nil
		},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if p := produced.Load(); p > 20 {
		t.Fatalf("source produced %d records after downstream failure", p)
	}
}

func TestStreamPipelineHundredConcurrentCancels(t *testing.T) {
	// Mirror of serve's 100-concurrent-leak test at the substrate level:
	// many pipelines cancelled mid-flight must all unwind completely.
	base := runtime.NumGoroutine()
	const pipes = 100
	errs := make(chan error, pipes)
	for p := 0; p < pipes; p++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(p%10) * time.Millisecond)
			cancel()
		}()
		go func() {
			errs <- StreamPipeline(ctx, 2,
				func(ctx context.Context, in <-chan int, out chan<- int) error {
					for i := 0; ; i++ {
						if !send(ctx, out, i) {
							return ctx.Err()
						}
					}
				},
				func(ctx context.Context, in <-chan int, out chan<- int) error {
					for range in {
						time.Sleep(100 * time.Microsecond)
					}
					return nil
				},
			)
		}()
	}
	for p := 0; p < pipes; p++ {
		select {
		case err := <-errs:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pipeline err = %v, want context.Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("pipeline %d never finished", p)
		}
	}
	settleGoroutines(t, base)
}
