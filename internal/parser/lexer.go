package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokFloat
	tokString
	tokPunct // ( ) [ ] { } , |
	tokOp    // :- := == =\= >= =< > < + - * / // mod is @
	tokDot   // clause-terminating '.'
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokAtom:
		return "atom"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokPunct:
		return "punctuation"
	case tokOp:
		return "operator"
	case tokDot:
		return "'.'"
	default:
		return "token(?)"
	}
}

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes rule-notation source text.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// Error is a parse error with position information.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) byteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.byteAt(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.byteAt(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.line
	c := l.src[l.pos]

	// Clause-terminating dot: '.' followed by whitespace, comment, or EOF.
	if c == '.' {
		nxt := l.byteAt(1)
		if nxt == 0 || nxt == ' ' || nxt == '\t' || nxt == '\n' || nxt == '\r' || nxt == '%' {
			l.pos++
			return token{kind: tokDot, text: ".", line: start}, nil
		}
	}

	// Numbers (including leading digit floats like 1.5; '-' is an operator).
	if isDigit(c) {
		j := l.pos
		for j < len(l.src) && isDigit(l.src[j]) {
			j++
		}
		isFloat := false
		if j+1 < len(l.src) && l.src[j] == '.' && isDigit(l.src[j+1]) {
			isFloat = true
			j++
			for j < len(l.src) && isDigit(l.src[j]) {
				j++
			}
		}
		if j < len(l.src) && (l.src[j] == 'e' || l.src[j] == 'E') {
			k := j + 1
			if k < len(l.src) && (l.src[k] == '+' || l.src[k] == '-') {
				k++
			}
			if k < len(l.src) && isDigit(l.src[k]) {
				isFloat = true
				for k < len(l.src) && isDigit(l.src[k]) {
					k++
				}
				j = k
			}
		}
		text := l.src[l.pos:j]
		l.pos = j
		if isFloat {
			return token{kind: tokFloat, text: text, line: start}, nil
		}
		return token{kind: tokInt, text: text, line: start}, nil
	}

	// Variables: uppercase or underscore start.
	if c == '_' || unicode.IsUpper(rune(c)) {
		j := l.pos
		for j < len(l.src) && isIdentByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokVar, text: text, line: start}, nil
	}

	// Atoms: lowercase identifier.
	if c >= 'a' && c <= 'z' {
		j := l.pos
		for j < len(l.src) && isIdentByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		// Word operators.
		if text == "is" || text == "mod" {
			return token{kind: tokOp, text: text, line: start}, nil
		}
		return token{kind: tokAtom, text: text, line: start}, nil
	}

	// Quoted atoms.
	if c == '\'' {
		var b strings.Builder
		j := l.pos + 1
		for {
			if j >= len(l.src) {
				return token{}, l.errf("unterminated quoted atom")
			}
			if l.src[j] == '\\' && j+1 < len(l.src) {
				b.WriteByte(unescape(l.src[j+1]))
				j += 2
				continue
			}
			if l.src[j] == '\'' {
				break
			}
			if l.src[j] == '\n' {
				l.line++
			}
			b.WriteByte(l.src[j])
			j++
		}
		l.pos = j + 1
		return token{kind: tokAtom, text: b.String(), line: start}, nil
	}

	// Strings.
	if c == '"' {
		var b strings.Builder
		j := l.pos + 1
		for {
			if j >= len(l.src) {
				return token{}, l.errf("unterminated string")
			}
			if l.src[j] == '\\' && j+1 < len(l.src) {
				b.WriteByte(unescape(l.src[j+1]))
				j += 2
				continue
			}
			if l.src[j] == '"' {
				break
			}
			if l.src[j] == '\n' {
				l.line++
			}
			b.WriteByte(l.src[j])
			j++
		}
		l.pos = j + 1
		return token{kind: tokString, text: b.String(), line: start}, nil
	}

	// Multi-byte operators, longest match first.
	for _, op := range []string{":-", ":=", "=\\=", "==", ">=", "=<", "//"} {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokOp, text: op, line: start}, nil
		}
	}

	switch c {
	case '(', ')', '[', ']', '{', '}', ',', '|':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: start}, nil
	case '>', '<', '+', '-', '*', '/', '@', '.', '=':
		l.pos++
		return token{kind: tokOp, text: string(c), line: start}, nil
	}
	return token{}, l.errf("unexpected character %q", string(rune(c)))
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	default:
		return c
	}
}
