// Command motifctl is the cluster coordinator: the server front end that
// shards motif jobs across registered motifd worker daemons — the paper's
// Server ∘ Rand composition across real processes. Workers join with
// motifd -coordinator; clients submit to the coordinator exactly as they
// would to a single motifd, and the coordinator places each job on a
// worker via the selected policy, retries it elsewhere if the worker dies,
// and backs off workers that shed with 429.
//
// Usage:
//
//	motifctl [-addr :8070] [-policy rand|label|least] [-seed N]
//	         [-pending 256] [-attempts 4] [-heartbeat 500ms] [-drain 1m]
//	         [-store DIR] [-collapse] [-place 32]
//	         [-qos [-tenant-depth N] [-weights gold=4,free=1]]
//
// With -qos the coordinator's admission becomes tenant-aware, mirroring a
// single motifd one level up: accepted jobs queue in a weighted-fair
// scheduler (tenant from X-Motif-Tenant or the "tenant" body field),
// -place placement loops drain it in DRR order, per-tenant depth is
// bounded, and high-class arrivals preempt the same tenant's queued
// lower-class jobs back to their clients as retriable "preempted" states.
// Heartbeats additionally aggregate per-tenant queue depth across workers
// into /metrics.
//
// With -store the coordinator journals every job's lifecycle to a
// write-ahead log in DIR. On restart against the same directory it replays
// the log: finished jobs stay pollable, jobs orphaned by a crash are
// re-placed onto workers under their original IDs, and client-supplied
// request ids answer resubmissions idempotently across the restart.
//
// Policies mirror the paper's placement strategies: rand is Tree-Reduce-1's
// uniform random shipping, label is Tree-Reduce-2's sticky pre-assignment
// (jobs sharing a label co-locate), least is the Scheduler motif fed by
// heartbeat queue-depth reports. Under the label policy, unlabeled jobs are
// labeled with their content digest, so identical content co-locates on the
// worker whose memo cache is already warm for it.
//
// With -collapse, identical in-flight submissions collapse onto one
// placement instead of being shipped twice; the worker-side memo caches
// (motifd -memo) then answer later repeats. Heartbeats report each worker's
// cache counters and /metrics aggregates them into a cluster hit-rate.
//
// API:
//
//	POST /cluster/v1/register   worker joins (motifd -coordinator does this)
//	POST /cluster/v1/heartbeat  worker load report
//	POST /v1/jobs               submit a job (202 with id; 429 + Retry-After
//	                            when the pending bound is hit)
//	GET  /v1/jobs/{id}          poll a job
//	GET  /v1/jobs               list recent jobs
//	GET  /metrics               coordinator + per-worker metrics (?format=text)
//	GET  /debug/trace           event stream (?format=chrome merges all live
//	                            workers into one Perfetto timeline)
//	GET  /healthz               liveness + drain state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cmdutil"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	policyName := flag.String("policy", "rand", "placement policy: rand, label, or least")
	pending := flag.Int("pending", 256, "pending-job bound (beyond it, shed with 429)")
	attempts := flag.Int("attempts", 4, "max placements per job before it fails")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeatInterval, "worker heartbeat interval")
	drain := flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
	seed := cmdutil.Seed(7)
	storeDir := flag.String("store", "", "durable job store directory; empty disables persistence")
	collapse := flag.Bool("collapse", false, "collapse identical in-flight submissions onto one placement")
	place := flag.Int("place", 32, "concurrent placement loops (queued jobs beyond them drain in QoS order)")
	fairQoS, tenantDepth, weightSpec := cmdutil.QoSFlags()
	flag.Parse()

	policy, err := cluster.NewPolicy(*policyName, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifctl: %v\n", err)
		os.Exit(2)
	}
	weights, err := cmdutil.TenantWeights(*weightSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifctl: -weights: %v\n", err)
		os.Exit(2)
	}
	var js *store.JobStore
	if *storeDir != "" {
		js, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifctl: store: %v\n", err)
			os.Exit(2)
		}
		m := js.Metrics()
		fmt.Fprintf(os.Stderr, "motifctl: store %s: replayed %d records (%d jobs, %d incomplete)\n",
			*storeDir, m.ReplayedRecords, m.TrackedJobs, m.IncompleteJobs)
	}
	c, err := cluster.NewCoordinator(cluster.Config{
		Policy:            policy,
		Seed:              *seed,
		PendingCap:        *pending,
		PlaceWorkers:      *place,
		MaxAttempts:       *attempts,
		HeartbeatInterval: *heartbeat,
		Store:             js,
		MemoCollapse:      *collapse,
		FairQoS:           *fairQoS,
		TenantDepth:       *tenantDepth,
		TenantWeights:     weights,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifctl: %v\n", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "motifctl: coordinating on %s (policy %s, pending %d, %d attempts)\n",
			*addr, policy.Name(), *pending, *attempts)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "motifctl: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting submissions, let in-flight jobs
	// finish on their workers within the drain budget.
	fmt.Fprintln(os.Stderr, "motifctl: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "motifctl: http shutdown: %v\n", err)
	}
	if err := c.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "motifctl: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if js != nil {
		if err := js.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "motifctl: store close: %v\n", err)
		}
	}
	m := c.Metrics()
	fmt.Fprintf(os.Stderr, "motifctl: drained (accepted=%d done=%d failed=%d retries=%d deaths=%d)\n",
		m.Accepted, m.Done, m.Failed, m.Retries, m.WorkerDeaths)
}
