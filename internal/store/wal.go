package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Log geometry and limits.
const (
	// frameHeader is the per-record framing overhead: a uint32 payload
	// length followed by a uint32 CRC-32 (IEEE) of the payload.
	frameHeader = 8
	// maxRecordBytes bounds a single record; anything larger in a segment
	// is treated as a torn/corrupt frame. Job bodies are already bounded
	// by the servers' MaxBodyBytes, far below this.
	maxRecordBytes = 1 << 26
	// defaultSegmentBytes rotates segments at 1 MiB so compaction has
	// whole files to drop.
	defaultSegmentBytes = 1 << 20
)

// fsyncBoundsMicros buckets fsync latencies from 50µs to 100ms.
var fsyncBoundsMicros = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000, 100_000,
}

var errWALClosed = errors.New("store: wal is closed")

// wal is a segmented, CRC-checked, append-only log. Records are framed as
// [len uint32][crc32 uint32][payload] and written to numbered segment
// files (wal-%08d.seg). Every open starts a fresh segment, so a torn tail
// — a frame cut short by a crash — can only ever sit at the end of the
// highest pre-existing segment, where replay truncates it; a bad frame
// anywhere else is real corruption and fails the open.
//
// Durability is group-committed: append writes the frame under mu without
// syncing, and syncTo coalesces concurrent callers onto one fsync of the
// active segment. Rotation fsyncs the outgoing file before closing it, so
// syncing only the active file still covers every earlier record.
type wal struct {
	dir      string
	segBytes int64
	noSync   bool

	mu   sync.Mutex
	f    *os.File
	seq  int64   // sequence number of the active segment
	size int64   // bytes written to the active segment
	n    int64   // records appended by this process (monotone)
	segs []int64 // on-disk segment sequence numbers, ascending

	syncMu sync.Mutex
	synced atomic.Int64 // highest n known durable

	closed bool

	// Counters. records is the log depth: frames currently on disk.
	records   atomic.Int64
	appends   atomic.Int64
	appendLen atomic.Int64
	fsyncs    atomic.Int64
	replayed  int64
	tornTails int64
	compacts  atomic.Int64

	histMu  sync.Mutex
	fsyncUS *metrics.Histogram
}

func segName(seq int64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

func (w *wal) segPath(seq int64) string { return filepath.Join(w.dir, segName(seq)) }

// openWAL opens (creating if needed) the log in dir, replays every intact
// record through apply in append order, and positions the log to append
// into a brand-new segment.
func openWAL(dir string, segBytes int64, noSync bool, apply func(payload []byte) error) (*wal, error) {
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &wal{
		dir:      dir,
		segBytes: segBytes,
		noSync:   noSync,
		fsyncUS:  metrics.NewHistogram(fsyncBoundsMicros...),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			// Leftover from a compaction interrupted before its rename;
			// the pre-compaction segments are still intact.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		var seq int64
		if _, err := fmt.Sscanf(name, "wal-%d.seg", &seq); err == nil {
			w.segs = append(w.segs, seq)
		}
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i] < w.segs[j] })
	for i, seq := range w.segs {
		last := i == len(w.segs)-1
		applied, err := w.replaySegment(seq, last, apply)
		w.replayed += applied
		if err != nil {
			return nil, err
		}
		w.seq = seq
	}
	w.records.Store(w.replayed)
	return w, nil
}

// replaySegment streams one segment's intact records through apply. A bad
// frame in the last segment is a torn tail: the file is truncated to the
// last intact record and replay stops there. A bad frame in any earlier
// segment is corruption and fails the open.
func (w *wal) replaySegment(seq int64, last bool, apply func([]byte) error) (int64, error) {
	path := w.segPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var applied, off int64
	hdr := make([]byte, frameHeader)
	torn := func() (int64, error) {
		if !last {
			return applied, fmt.Errorf("store: corrupt record in %s at offset %d", segName(seq), off)
		}
		w.tornTails++
		if err := os.Truncate(path, off); err != nil {
			return applied, fmt.Errorf("store: truncating torn tail of %s: %w", segName(seq), err)
		}
		return applied, nil
	}
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return applied, nil
			}
			return torn()
		}
		ln := binary.BigEndian.Uint32(hdr[:4])
		crc := binary.BigEndian.Uint32(hdr[4:])
		if ln > maxRecordBytes {
			return torn()
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(f, payload); err != nil {
			return torn()
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return torn()
		}
		if err := apply(payload); err != nil {
			return applied, fmt.Errorf("store: replaying %s: %w", segName(seq), err)
		}
		applied++
		off += frameHeader + int64(ln)
	}
}

// rotateLocked fsyncs and closes the active segment (if any) and starts
// the next one. Caller holds mu.
func (w *wal) rotateLocked() error {
	if w.f != nil {
		if !w.noSync {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	w.seq++
	f, err := os.OpenFile(w.segPath(w.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.f = f
	w.size = 0
	w.segs = append(w.segs, w.seq)
	return nil
}

// append frames and writes one payload to the active segment without
// syncing, returning the record's sequence number for syncTo. Callers that
// need an ordering guarantee between the write and their own state must
// hold their own lock across the call (JobStore does).
func (w *wal) append(payload []byte) (int64, error) {
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errWALClosed
	}
	if w.f == nil || w.size >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	w.size += int64(len(frame))
	w.n++
	w.appends.Add(1)
	w.appendLen.Add(int64(len(frame)))
	w.records.Add(1)
	return w.n, nil
}

// syncTo makes every record up to sequence number n durable. Concurrent
// callers share fsyncs: whoever holds syncMu syncs the active file and
// publishes the high-water mark; everyone who arrives meanwhile returns on
// the fast path.
func (w *wal) syncTo(n int64) error {
	if w.noSync {
		return nil
	}
	if w.synced.Load() >= n {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= n {
		return nil
	}
	w.mu.Lock()
	f, upto := w.f, w.n
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			// The segment was rotated out from under us; rotation fsyncs
			// before closing, so everything up to upto is durable.
			w.synced.Store(upto)
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	w.fsyncs.Add(1)
	w.histMu.Lock()
	w.fsyncUS.Observe(time.Since(t0).Microseconds())
	w.histMu.Unlock()
	w.synced.Store(upto)
	return nil
}

// compactCut marks the boundary of a compaction: every record in olds is
// covered by the caller's snapshot; snapSeq is reserved for the snapshot
// segment, ordered after olds and before the new active segment.
type compactCut struct {
	snapSeq int64
	olds    []int64
	nAtCut  int64
}

// beginCompact rotates appends onto a fresh segment two sequence numbers
// ahead, reserving the gap for the snapshot. The caller must hold the lock
// that orders its state snapshot against appends, so the returned cut
// exactly covers the snapshot's contents.
func (w *wal) beginCompact() (compactCut, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return compactCut{}, errWALClosed
	}
	cut := compactCut{
		snapSeq: w.seq + 1,
		olds:    append([]int64(nil), w.segs...),
		nAtCut:  w.records.Load(),
	}
	w.seq++ // reserve snapSeq; rotateLocked advances to snapSeq+1
	if err := w.rotateLocked(); err != nil {
		return compactCut{}, err
	}
	return cut, nil
}

// finishCompact writes the live records as the snapshot segment (ordered
// before the new active segment, so replay applies snapshot then fresh
// appends), atomically publishes it via rename, and deletes the old
// segments. Runs concurrently with appends.
func (w *wal) finishCompact(cut compactCut, live [][]byte) error {
	tmp := filepath.Join(w.dir, segName(cut.snapSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	hdr := make([]byte, frameHeader)
	for _, payload := range live {
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(hdr); err == nil {
			_, err = f.Write(payload)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: %w", err)
		}
	}
	if !w.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, w.segPath(cut.snapSeq)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !w.noSync {
		if d, err := os.Open(w.dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}

	old := make(map[int64]bool, len(cut.olds))
	for _, s := range cut.olds {
		old[s] = true
	}
	w.mu.Lock()
	segs := []int64{cut.snapSeq}
	for _, s := range w.segs {
		if !old[s] {
			segs = append(segs, s)
		}
	}
	w.segs = segs
	w.records.Add(int64(len(live)) - cut.nAtCut)
	w.mu.Unlock()

	for _, s := range cut.olds {
		_ = os.Remove(w.segPath(s))
	}
	w.compacts.Add(1)
	return nil
}

func (w *wal) segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.f = nil
	return nil
}

// walStats is the point-in-time observable state of the log.
type walStats struct {
	segments    int
	sizeBytes   int64
	records     int64
	appends     int64
	fsyncs      int64
	replayed    int64
	tornTails   int64
	compactions int64
	fsyncP50MS  float64
	fsyncP99MS  float64
	fsyncMaxMS  float64
}

func (w *wal) stats() walStats {
	w.mu.Lock()
	segs := append([]int64(nil), w.segs...)
	w.mu.Unlock()
	var size int64
	for _, s := range segs {
		if fi, err := os.Stat(w.segPath(s)); err == nil {
			size += fi.Size()
		}
	}
	st := walStats{
		segments:    len(segs),
		sizeBytes:   size,
		records:     w.records.Load(),
		appends:     w.appends.Load(),
		fsyncs:      w.fsyncs.Load(),
		replayed:    w.replayed,
		tornTails:   w.tornTails,
		compactions: w.compacts.Load(),
	}
	w.histMu.Lock()
	st.fsyncP50MS = w.fsyncUS.Quantile(0.50) / 1000
	st.fsyncP99MS = w.fsyncUS.Quantile(0.99) / 1000
	st.fsyncMaxMS = float64(w.fsyncUS.Max()) / 1000
	w.histMu.Unlock()
	return st
}
