#!/bin/sh
# Coordinator-failover smoke test for the HA pair, run by CI and
# `make ha-smoke`:
#
#   Start an active motifctl (holding the store lease) and a standby
#   (-standby -peer) tailing the same WAL directory, plus two workers whose
#   -coordinator lists both URLs. Submit a batch with client request ids,
#   SIGKILL the *active coordinator* mid-batch, and assert the standby takes
#   over the lease and the WAL, the workers re-register with it on their
#   own, every accepted job completes under its original id (zero lost), and
#   resubmitting every request id answers with the original job (zero
#   duplicated).
set -eu

A_ADDR=127.0.0.1:18270
B_ADDR=127.0.0.1:18271
W1_ADDR=127.0.0.1:18281
W2_ADDR=127.0.0.1:18282
ACTIVE="http://$A_ADDR"
STANDBY="http://$B_ADDR"
JOBS=16
TMP="$(mktemp -d)"
APID= BPID= W1PID= W2PID=
trap 'kill -9 "$APID" "$BPID" "$W1PID" "$W2PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/motifctl" ./cmd/motifctl
go build -o "$TMP/motifd" ./cmd/motifd

json_path() { # json_path FILE DOTTED.PATH -> value (asserts valid JSON)
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
for part in sys.argv[2].split("."):
    doc = doc[part]
print(doc)' "$1" "$2"
}

wait_up() { # wait_up URL NAME LOG
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "$2 did not come up; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_workers() { # wait_workers BASE N — poll a coordinator until N workers are live
    i=0
    while :; do
        if curl -sf "$1/metrics" >"$TMP/metrics.json" 2>/dev/null; then
            LIVE="$(json_path "$TMP/metrics.json" live_workers)"
            [ "$LIVE" = "$2" ] && break
        fi
        i=$((i + 1))
        [ "$i" -lt 200 ] || { echo "workers never registered with $1 (want $2)" >&2; cat "$TMP/standby.log" >&2; exit 1; }
        sleep 0.1
    done
}

# Active holds the lease over the shared store; standby watches both the
# active's /healthz and that lease. A short TTL keeps the takeover window
# tight for the test.
"$TMP/motifctl" -addr "$A_ADDR" -heartbeat 100ms -store "$TMP/shared-store" \
    -lease-ttl 1s 2>"$TMP/active.log" &
APID=$!
wait_up "$ACTIVE" motifctl-active "$TMP/active.log"
"$TMP/motifctl" -addr "$B_ADDR" -heartbeat 100ms -store "$TMP/shared-store" \
    -lease-ttl 1s -standby -peer "$ACTIVE" 2>"$TMP/standby.log" &
BPID=$!
wait_up "$STANDBY" motifctl-standby "$TMP/standby.log"
curl -sf "$STANDBY/healthz" >"$TMP/healthz.json"
STATE="$(json_path "$TMP/healthz.json" status)"
[ "$STATE" = standby ] || { echo "standby reports '$STATE' before takeover, want 'standby'" >&2; exit 1; }

# Workers list both coordinator URLs: they register with the active and
# fail over to the standby on their own once the active goes silent.
"$TMP/motifd" -addr "$W1_ADDR" -procs 1 -inner 1 -id w1 \
    -coordinator "$ACTIVE,$STANDBY" -advertise "http://$W1_ADDR" 2>"$TMP/w1.log" &
W1PID=$!
"$TMP/motifd" -addr "$W2_ADDR" -procs 1 -inner 1 -id w2 \
    -coordinator "$ACTIVE,$STANDBY" -advertise "http://$W2_ADDR" 2>"$TMP/w2.log" &
W2PID=$!
wait_up "http://$W1_ADDR" w1 "$TMP/w1.log"
wait_up "http://$W2_ADDR" w2 "$TMP/w2.log"
wait_workers "$ACTIVE" 2
echo "HA pair up: active + standby on one WAL, 2 workers registered"

# Submit the batch with client request ids; 202 only after the WAL fsync.
: >"$TMP/ids"
j=0
while [ "$j" -lt "$JOBS" ]; do
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$ACTIVE/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d "{\"type\":\"tree\",\"id\":\"ha-$j\",\"tree\":{\"leaves\":64,\"node_cost_us\":3000,\"seed\":$j}}")"
    [ "$CODE" = 202 ] || { echo "submit $j returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    json_path "$TMP/submit.json" id >>"$TMP/ids"
    j=$((j + 1))
done
echo "submitted $JOBS jobs with request ids"

# Let part of the batch finish so the kill lands mid-run.
i=0
while :; do
    curl -sf "$ACTIVE/metrics" >"$TMP/metrics.json"
    DONE="$(json_path "$TMP/metrics.json" done)"
    [ "$DONE" -ge 2 ] && break
    i=$((i + 1))
    [ "$i" -lt 200 ] || { echo "no jobs finished before the kill (done=$DONE)" >&2; exit 1; }
    sleep 0.05
done

# Crash the ACTIVE coordinator: SIGKILL, no drain, no lease release. The
# standby must notice the dead peer and the stale lease, replay the WAL,
# and take over.
kill -9 "$APID"
echo "killed active motifctl (SIGKILL) with done=$DONE of $JOBS"

i=0
while :; do
    if curl -sf "$STANDBY/healthz" >"$TMP/healthz.json" 2>/dev/null; then
        STATE="$(json_path "$TMP/healthz.json" status)"
        [ "$STATE" = ok ] && break
    fi
    i=$((i + 1))
    [ "$i" -lt 200 ] || { echo "standby never took over (status=$STATE)" >&2; cat "$TMP/standby.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "took over" "$TMP/standby.log" || { echo "no takeover line in standby log:" >&2; cat "$TMP/standby.log" >&2; exit 1; }
curl -sf "$STANDBY/metrics" >"$TMP/metrics.json"
REPLAYED="$(json_path "$TMP/metrics.json" store.replayed_records)"
[ "$REPLAYED" -gt 0 ] || { echo "standby replayed nothing at takeover" >&2; exit 1; }
echo "standby took over: replayed $REPLAYED records"

# The workers must re-register with the standby without being restarted.
wait_workers "$STANDBY" 2
echo "both workers failed over to the standby"

# Zero lost: every accepted id reaches done on the standby under its
# original id (orphans re-placed from the replayed WAL).
while read -r ID; do
    i=0
    while :; do
        CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "$STANDBY/v1/jobs/$ID")"
        [ "$CODE" = 200 ] || { echo "poll $ID returned $CODE after takeover" >&2; exit 1; }
        STATE="$(json_path "$TMP/job.json" state)"
        case "$STATE" in
        done) break ;;
        error) echo "job $ID lost to the failover:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
        esac
        i=$((i + 1))
        [ "$i" -lt 600 ] || { echo "job $ID stuck in $STATE after takeover" >&2; exit 1; }
        sleep 0.05
    done
done <"$TMP/ids"
echo "all $JOBS jobs completed across the failover (zero lost)"

# Zero duplicated: resubmitting every request id must answer with the
# original job, not start a fresh execution on the new coordinator.
j=0
while [ "$j" -lt "$JOBS" ]; do
    WANT="$(sed -n "$((j + 1))p" "$TMP/ids")"
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$STANDBY/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d "{\"type\":\"tree\",\"id\":\"ha-$j\",\"tree\":{\"leaves\":64,\"node_cost_us\":3000,\"seed\":$j}}")"
    [ "$CODE" = 202 ] || { echo "resubmit $j returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    GOT="$(json_path "$TMP/submit.json" id)"
    [ "$GOT" = "$WANT" ] || { echo "resubmit ha-$j got $GOT, want $WANT (duplicated job)" >&2; exit 1; }
    j=$((j + 1))
done
curl -sf "$STANDBY/metrics" >"$TMP/metrics.json"
FAILED="$(json_path "$TMP/metrics.json" failed)"
DEDUPED="$(json_path "$TMP/metrics.json" deduped)"
[ "$FAILED" = 0 ] || { echo "failed=$FAILED after failover, want 0" >&2; cat "$TMP/metrics.json" >&2; exit 1; }
[ "$DEDUPED" -ge "$JOBS" ] || { echo "deduped=$DEDUPED, want >= $JOBS" >&2; exit 1; }
echo "idempotent resubmission across failover (deduped=$DEDUPED, failed=0)"

# Drain the promoted coordinator and the workers.
kill -TERM "$BPID"
i=0
while kill -0 "$BPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "promoted motifctl did not drain" >&2; cat "$TMP/standby.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/standby.log" || { echo "no drain line in standby log:" >&2; cat "$TMP/standby.log" >&2; exit 1; }
kill -TERM "$W1PID" "$W2PID"
i=0
while kill -0 "$W1PID" 2>/dev/null || kill -0 "$W2PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "workers did not drain" >&2; exit 1; }
    sleep 0.1
done
echo "ha smoke: OK"
