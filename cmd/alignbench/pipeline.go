package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

// runPipeline drives one streaming pipeline job — filter → align → reduce →
// report over a synthetic family — against a motifd instance (target "self"
// hosts one in-process), following the NDJSON stream as stages produce
// records. The interesting quantity is time-to-first-record versus total
// elapsed: a streaming pipeline delivers its first result while later
// stages are still working, where a batch job delivers nothing until
// everything is done.
func runPipeline(target string, n, seqLen int, seed int64, band, group int, delayUS int64, memoBytes int64) error {
	base := target
	if target == "self" {
		s := serve.New(serve.Config{Seed: seed, MemoBytes: memoBytes})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: s.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			httpSrv.Close()
			sctx, cancel := shutdownCtx()
			defer cancel()
			_ = s.Shutdown(sctx)
		}()
		base = "http://" + ln.Addr().String()
	}

	spec := &pipeline.Spec{
		N: n, Len: seqLen, Seed: seed,
		Stages: []pipeline.StageSpec{
			{Name: "filter", MinLen: 1},
			{Name: "align", Band: band},
			{Name: "reduce", Group: group, Band: band},
			{Name: "report", DelayMicros: delayUS},
		},
	}
	body, err := json.Marshal(serve.JobRequest{Type: serve.JobPipeline, Pipeline: spec})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d: %s", resp.StatusCode, st.Error)
	}

	stream, err := client.Get(base + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: status %d", stream.StatusCode)
	}
	var (
		firstAt time.Duration
		lines   int
		summary pipeline.Record
	)
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if lines == 0 {
			firstAt = time.Since(start)
		}
		lines++
		var rec pipeline.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("stream line %d: %w", lines, err)
		}
		if rec.Kind == "summary" {
			summary = rec
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	total := time.Since(start)
	if lines == 0 {
		return fmt.Errorf("stream delivered no records")
	}

	// The stream has ended, so the job is terminal; fetch its stage table.
	resp, err = client.Get(base + "/v1/jobs/" + st.ID)
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}

	fmt.Printf("== pipeline: %d-seq family (len %d) through filter|align|reduce(%d)|report against %s ==\n",
		n, seqLen, group, base)
	if st.Pipeline != nil {
		tab := metrics.NewTable("stage", "in", "out", "dropped", "resumed")
		for _, sr := range st.Pipeline.Stages {
			tab.AddRow(sr.Name, sr.In, sr.Out, sr.Dropped, sr.Resumed)
		}
		fmt.Print(tab.String())
		if st.Pipeline.ResumedStages > 0 || st.Pipeline.MemoStages > 0 {
			fmt.Printf("resumed %d stages from checkpoints; %d stage outputs memoized\n",
				st.Pipeline.ResumedStages, st.Pipeline.MemoStages)
		}
	}
	fmt.Printf("streamed %d records (%d groups, mean identity %.3f)\n",
		lines, summary.Groups, summary.MeanIdentity)
	fmt.Printf("first record after %.1fms, stream complete after %.1fms (first result at %.0f%% of total)\n",
		ms(firstAt), ms(total), 100*ms(firstAt)/ms(total))
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
