package skel

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Grid is a dense 2-D float64 grid, row-major.
type Grid struct {
	// Rows, Cols are the dimensions including boundary cells.
	Rows, Cols int
	// Data is row-major storage, length Rows*Cols.
	Data []float64
}

// NewGrid allocates a zeroed grid.
func NewGrid(rows, cols int) *Grid {
	return &Grid{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the value at (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[r*g.Cols+c] }

// Set assigns the value at (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[r*g.Cols+c] = v }

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	n := NewGrid(g.Rows, g.Cols)
	copy(n.Data, g.Data)
	return n
}

// JacobiOptions configures the grid relaxation skeleton.
type JacobiOptions struct {
	// Workers is the number of row-block workers; minimum 1.
	Workers int
	// Iterations is the number of sweeps; if Tolerance > 0, iteration also
	// stops once the max update falls below it.
	Iterations int
	// Tolerance is the optional convergence threshold.
	Tolerance float64
	// CheckpointEvery, when > 0 and Checkpoint is non-nil, snapshots the
	// working grid every CheckpointEvery sweeps.
	CheckpointEvery int
	// Checkpoint is the durability hook: it receives the sweep count, a
	// private copy of the grid after that sweep, and the sweep's max
	// update. Because each sweep is a deterministic function of the grid
	// before it — independent of Workers — resuming from a snapshot
	// reproduces the uncheckpointed run bitwise.
	Checkpoint func(sweep int, g *Grid, delta float64)
	// Resume is consulted once at the start: returning (g, sweep, true)
	// with a grid of matching dimensions and sweep > 0 continues
	// relaxation from that snapshot instead of from the input grid.
	// Snapshots with mismatched dimensions are ignored.
	Resume func() (g *Grid, sweep int, ok bool)
}

// Jacobi runs Jacobi relaxation on the grid's interior (boundary rows and
// columns are fixed): each interior cell is repeatedly replaced by the
// average of its four neighbours. This is the paper's "grid problems" motif
// area (and the structure of Cole's grid skeletons): the user supplies the
// grid, the skeleton partitions it into horizontal blocks, one worker per
// block, with a barrier between sweeps standing in for boundary exchange.
// It returns the relaxed grid, the number of sweeps performed, and the
// final maximum update.
//
// Every new cell value reads only the previous sweep's buffer, so the
// result after k sweeps is bitwise identical for any worker count — the
// property that makes grid results memoizable and snapshots portable.
//
// Cancellation is observed between sweeps: when ctx is done the skeleton
// returns nil, the sweeps completed so far, and ctx.Err(), with no worker
// goroutines left behind.
func Jacobi(ctx context.Context, g *Grid, opts JacobiOptions) (*Grid, int, float64, error) {
	if g.Rows < 3 || g.Cols < 3 {
		return nil, 0, 0, fmt.Errorf("skel: Jacobi needs at least a 3x3 grid, got %dx%d", g.Rows, g.Cols)
	}
	p := opts.Workers
	if p < 1 {
		p = 1
	}
	interior := g.Rows - 2
	if p > interior {
		p = interior
	}
	cur, next := g.Clone(), g.Clone()
	sweeps := 0
	if opts.Resume != nil {
		if rg, s, ok := opts.Resume(); ok && rg != nil && s > 0 && rg.Rows == g.Rows && rg.Cols == g.Cols {
			cur, next = rg.Clone(), rg.Clone()
			sweeps = s
		}
	}
	maxDelta := make([]float64, p)

	lastDelta := 0.0
	for sweeps < opts.Iterations {
		if err := ctx.Err(); err != nil {
			return nil, sweeps, 0, err
		}
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			w := w
			lo := 1 + w*interior/p
			hi := 1 + (w+1)*interior/p
			waitGroupGo(&wg, func() {
				var local float64
				for r := lo; r < hi; r++ {
					for c := 1; c < g.Cols-1; c++ {
						v := 0.25 * (cur.At(r-1, c) + cur.At(r+1, c) + cur.At(r, c-1) + cur.At(r, c+1))
						d := math.Abs(v - cur.At(r, c))
						if d > local {
							local = d
						}
						next.Set(r, c, v)
					}
				}
				maxDelta[w] = local
			})
		}
		wg.Wait()
		cur, next = next, cur
		sweeps++
		delta := 0.0
		for _, d := range maxDelta {
			if d > delta {
				delta = d
			}
		}
		lastDelta = delta
		if opts.Checkpoint != nil && opts.CheckpointEvery > 0 && sweeps%opts.CheckpointEvery == 0 {
			opts.Checkpoint(sweeps, cur.Clone(), delta)
		}
		if opts.Tolerance > 0 && delta < opts.Tolerance {
			return cur, sweeps, delta, nil
		}
	}
	return cur, sweeps, lastDelta, nil
}
