package term

import (
	"testing"
	"testing/quick"
)

func TestAtomString(t *testing.T) {
	cases := []struct {
		atom Atom
		want string
	}{
		{"sync", "sync"},
		{"halt", "halt"},
		{"[]", "[]"},
		{"+", "'+'"},
		{"Upper", "'Upper'"},
		{"has space", "'has space'"},
		{"", "''"},
		{"a_b9", "a_b9"},
	}
	for _, c := range cases {
		if got := c.atom.String(); got != c.want {
			t.Errorf("Atom(%q).String() = %q, want %q", string(c.atom), got, c.want)
		}
	}
}

func TestKinds(t *testing.T) {
	h := NewHeap()
	cases := []struct {
		t    Term
		kind Kind
	}{
		{Atom("a"), KAtom},
		{Int(3), KInt},
		{Float(1.5), KFloat},
		{String_("s"), KString},
		{h.NewVar("X"), KVar},
		{NewCompound("f", Int(1)), KCompound},
		{NewPort(h, "p"), KPort},
	}
	for _, c := range cases {
		if c.t.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.t.String(), c.t.Kind(), c.kind)
		}
	}
}

func TestNewCompoundZeroArgsIsAtom(t *testing.T) {
	got := NewCompound("p")
	if a, ok := got.(Atom); !ok || a != "p" {
		t.Fatalf("NewCompound(p) = %#v, want Atom(p)", got)
	}
}

func TestMkListAndListSlice(t *testing.T) {
	l := MkList(Int(1), Int(2), Int(3))
	if got := Sprint(l); got != "[1,2,3]" {
		t.Fatalf("Sprint list = %q", got)
	}
	elems, ok := ListSlice(l)
	if !ok || len(elems) != 3 {
		t.Fatalf("ListSlice failed: %v %d", ok, len(elems))
	}
	if elems[1] != Term(Int(2)) {
		t.Errorf("elems[1] = %v", elems[1])
	}
}

func TestListSliceImproper(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("T")
	l := Cons(Int(1), v)
	if _, ok := ListSlice(l); ok {
		t.Fatal("ListSlice on open list should fail")
	}
}

func TestListSliceDereferencesTail(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("T")
	l := Cons(Int(1), v)
	if _, err := v.Bind(MkList(Int(2))); err != nil {
		t.Fatal(err)
	}
	elems, ok := ListSlice(l)
	if !ok || len(elems) != 2 {
		t.Fatalf("ListSlice = %v, ok=%v", elems, ok)
	}
}

func TestTuples(t *testing.T) {
	tt := MkTuple(Atom("a"), Int(2))
	if got := Sprint(tt); got != "{a,2}" {
		t.Fatalf("tuple prints as %q", got)
	}
	elems, ok := IsTuple(tt)
	if !ok || len(elems) != 2 {
		t.Fatalf("IsTuple: %v %d", ok, len(elems))
	}
	empty := MkTuple()
	if elems, ok := IsTuple(empty); !ok || len(elems) != 0 {
		t.Fatalf("empty tuple: %v %d", ok, len(elems))
	}
}

func TestVarBindOnce(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("X")
	if v.Bound() {
		t.Fatal("fresh var bound")
	}
	if _, err := v.Bind(Int(1)); err != nil {
		t.Fatal(err)
	}
	if !v.Bound() || v.Value() != Term(Int(1)) {
		t.Fatal("bind did not stick")
	}
	// Same value: idempotent.
	if _, err := v.Bind(Int(1)); err != nil {
		t.Fatalf("rebinding same value should succeed: %v", err)
	}
	// Different value: single-assignment violation.
	if _, err := v.Bind(Int(2)); err == nil {
		t.Fatal("expected ErrAlreadyBound")
	} else if _, ok := err.(*ErrAlreadyBound); !ok {
		t.Fatalf("wrong error type %T", err)
	}
}

func TestVarBindSelfNoop(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("X")
	if _, err := v.Bind(v); err != nil {
		t.Fatal(err)
	}
	if v.Bound() {
		t.Fatal("self-bind should be a no-op")
	}
}

func TestVarWaiters(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("X")
	v.AddWaiter("w1")
	v.AddWaiter("w2")
	woken, err := v.Bind(Atom("done"))
	if err != nil {
		t.Fatal(err)
	}
	if len(woken) != 2 || woken[0] != "w1" || woken[1] != "w2" {
		t.Fatalf("woken = %v", woken)
	}
	// Waiters are drained.
	if len(v.waiters) != 0 {
		t.Fatal("waiters not drained")
	}
}

func TestWalkChains(t *testing.T) {
	h := NewHeap()
	a, b, c := h.NewVar("A"), h.NewVar("B"), h.NewVar("C")
	if _, err := a.Bind(b); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bind(c); err != nil {
		t.Fatal(err)
	}
	if Walk(a) != Term(c) {
		t.Fatalf("Walk(a) = %v, want C", Walk(a))
	}
	if _, err := c.Bind(Int(7)); err != nil {
		t.Fatal(err)
	}
	if Walk(a) != Term(Int(7)) {
		t.Fatalf("Walk(a) = %v, want 7", Walk(a))
	}
}

func TestResolve(t *testing.T) {
	h := NewHeap()
	x := h.NewVar("X")
	f := NewCompound("f", x, Int(2))
	if _, err := x.Bind(Atom("a")); err != nil {
		t.Fatal(err)
	}
	r := Resolve(f)
	if Sprint(r) != "f(a,2)" {
		t.Fatalf("Resolve = %s", Sprint(r))
	}
}

func TestEqual(t *testing.T) {
	h := NewHeap()
	x := h.NewVar("X")
	y := h.NewVar("Y")
	cases := []struct {
		a, b Term
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Atom("a"), Atom("a"), true},
		{Atom("a"), String_("a"), false},
		{NewCompound("f", Int(1)), NewCompound("f", Int(1)), true},
		{NewCompound("f", Int(1)), NewCompound("g", Int(1)), false},
		{NewCompound("f", Int(1)), NewCompound("f", Int(1), Int(2)), false},
		{x, x, true},
		{x, y, false},
		{MkList(Int(1)), MkList(Int(1)), true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%s,%s) = %v, want %v", Sprint(c.a), Sprint(c.b), got, c.want)
		}
	}
}

func TestEqualThroughBinding(t *testing.T) {
	h := NewHeap()
	x := h.NewVar("X")
	if _, err := x.Bind(Int(3)); err != nil {
		t.Fatal(err)
	}
	if !Equal(NewCompound("f", x), NewCompound("f", Int(3))) {
		t.Fatal("Equal should dereference")
	}
}

func TestGroundAndVars(t *testing.T) {
	h := NewHeap()
	x, y := h.NewVar("X"), h.NewVar("Y")
	tm := NewCompound("f", x, NewCompound("g", y, x), Int(1))
	if Ground(tm) {
		t.Fatal("term with vars reported ground")
	}
	vs := Vars(tm)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Fatalf("Vars = %v", vs)
	}
	if _, err := x.Bind(Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := y.Bind(Atom("a")); err != nil {
		t.Fatal(err)
	}
	if !Ground(tm) {
		t.Fatal("fully bound term not ground")
	}
	if len(Vars(tm)) != 0 {
		t.Fatal("Vars nonempty after binding")
	}
}

func TestMatchAtom(t *testing.T) {
	b := Bindings{}
	res, _ := Match(Atom("a"), Atom("a"), b)
	if res != MatchYes {
		t.Fatalf("a~a: %v", res)
	}
	res, _ = Match(Atom("a"), Atom("b"), b)
	if res != MatchNo {
		t.Fatalf("a~b: %v", res)
	}
}

func TestMatchCapturesVars(t *testing.T) {
	h := NewHeap()
	pv := h.NewVar("P")
	b := Bindings{}
	res, _ := Match(NewCompound("f", pv, Int(2)), NewCompound("f", Atom("x"), Int(2)), b)
	if res != MatchYes {
		t.Fatalf("res = %v", res)
	}
	if b[pv] != Term(Atom("x")) {
		t.Fatalf("binding = %v", b[pv])
	}
}

func TestMatchSuspendsOnUnboundGoalVar(t *testing.T) {
	h := NewHeap()
	gv := h.NewVar("G")
	b := Bindings{}
	res, susp := Match(Atom("a"), gv, b)
	if res != MatchSuspend {
		t.Fatalf("res = %v", res)
	}
	if len(susp) != 1 || susp[0] != gv {
		t.Fatalf("susp = %v", susp)
	}
	// Crucially the goal var must NOT have been bound (input matching only).
	if gv.Bound() {
		t.Fatal("head matching bound a goal variable")
	}
}

func TestMatchDeepSuspendVsNo(t *testing.T) {
	h := NewHeap()
	gv := h.NewVar("G")
	// Pattern f(a, b) vs goal f(G, c): arg2 mismatch dominates -> MatchNo.
	res, _ := Match(
		NewCompound("f", Atom("a"), Atom("b")),
		NewCompound("f", gv, Atom("c")),
		Bindings{})
	if res != MatchNo {
		t.Fatalf("expected MatchNo, got %v", res)
	}
	// Pattern f(a, b) vs goal f(G, b): suspend on G.
	res, susp := Match(
		NewCompound("f", Atom("a"), Atom("b")),
		NewCompound("f", gv, Atom("b")),
		Bindings{})
	if res != MatchSuspend || len(susp) != 1 {
		t.Fatalf("expected suspend on G, got %v %v", res, susp)
	}
}

func TestMatchNonLinearHead(t *testing.T) {
	h := NewHeap()
	pv := h.NewVar("X")
	pat := NewCompound("f", pv, pv)
	res, _ := Match(pat, NewCompound("f", Int(1), Int(1)), Bindings{})
	if res != MatchYes {
		t.Fatalf("f(X,X)~f(1,1): %v", res)
	}
	res, _ = Match(pat, NewCompound("f", Int(1), Int(2)), Bindings{})
	if res != MatchNo {
		t.Fatalf("f(X,X)~f(1,2): %v", res)
	}
	g := h.NewVar("G")
	res, susp := Match(pat, NewCompound("f", Int(1), g), Bindings{})
	if res != MatchSuspend || len(susp) == 0 {
		t.Fatalf("f(X,X)~f(1,G): %v %v", res, susp)
	}
}

func TestMatchListPattern(t *testing.T) {
	h := NewHeap()
	hd, tl := h.NewVar("H"), h.NewVar("T")
	pat := Cons(hd, tl)
	goal := MkList(Int(1), Int(2))
	b := Bindings{}
	res, _ := Match(pat, goal, b)
	if res != MatchYes {
		t.Fatalf("res = %v", res)
	}
	if b[hd] != Term(Int(1)) {
		t.Fatalf("H = %v", b[hd])
	}
	if Sprint(b[tl]) != "[2]" {
		t.Fatalf("T = %v", Sprint(b[tl]))
	}
}

func TestSubst(t *testing.T) {
	h := NewHeap()
	x := h.NewVar("X")
	y := h.NewVar("Y")
	tm := NewCompound("f", x, y, x)
	out := Subst(tm, Bindings{x: Int(1)})
	if Sprint(out) != "f(1,"+y.String()+",1)" {
		t.Fatalf("Subst = %s", Sprint(out))
	}
}

func TestRenameSharing(t *testing.T) {
	h := NewHeap()
	x := h.NewVar("X")
	t1 := NewCompound("f", x)
	t2 := NewCompound("g", x)
	seen := map[*Var]*Var{}
	r1 := Rename(t1, h, seen)
	r2 := Rename(t2, h, seen)
	v1 := Vars(r1)
	v2 := Vars(r2)
	if len(v1) != 1 || len(v2) != 1 || v1[0] != v2[0] {
		t.Fatal("renaming did not share variables across terms")
	}
	if v1[0] == x {
		t.Fatal("renaming did not produce a fresh variable")
	}
}

func TestPortSendAndStream(t *testing.T) {
	h := NewHeap()
	p := NewPort(h, "srv0")
	if _, err := p.Send(Atom("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(Atom("m2")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	elems, ok := ListSlice(p.Stream())
	if !ok || len(elems) != 2 {
		t.Fatalf("stream = %v ok=%v", elems, ok)
	}
	if p.Sent() != 2 || !p.Closed() {
		t.Fatalf("sent=%d closed=%v", p.Sent(), p.Closed())
	}
	if _, err := p.Send(Atom("m3")); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestPortWakesWaiters(t *testing.T) {
	h := NewHeap()
	p := NewPort(h, "w")
	// Suspend a waiter on the current (unbound) stream head.
	v := Walk(p.Stream()).(*Var)
	v.AddWaiter("proc")
	woken, err := p.Send(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(woken) != 1 || woken[0] != "proc" {
		t.Fatalf("woken = %v", woken)
	}
}

func TestPortOnSendHook(t *testing.T) {
	h := NewHeap()
	p := NewPort(h, "h")
	var got []Term
	p.OnSend = func(m Term) { got = append(got, m) }
	if _, err := p.Send(Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(Int(2)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hook calls = %d", len(got))
	}
}

func TestPrintInfix(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{NewCompound("+", Int(1), Int(2)), "1 + 2"},
		{NewCompound("*", NewCompound("+", Int(1), Int(2)), Int(3)), "(1 + 2) * 3"},
		{NewCompound(":=", Atom("x"), Int(1)), "x := 1"},
		{NewCompound("is", Atom("n1"), NewCompound("-", Atom("n"), Int(1))), "n1 is n - 1"},
		{NewCompound("@", NewCompound("reduce", Atom("r"), Atom("rv")), Atom("random")), "reduce(r,rv)@random"},
		{NewCompound("-", Int(4)), "'-'(4)"},
		{NewCompound("-", Atom("x")), "-x"},
	}
	for _, c := range cases {
		if got := Sprint(c.t); got != c.want {
			t.Errorf("Sprint = %q, want %q", got, c.want)
		}
	}
}

func TestPrintOpenList(t *testing.T) {
	h := NewHeap()
	v := h.NewVar("Xs")
	l := Cons(Int(1), Cons(Int(2), v))
	got := Sprint(l)
	want := "[1,2|" + v.String() + "]"
	if got != want {
		t.Fatalf("Sprint = %q want %q", got, want)
	}
}

// Property: MkList then ListSlice is identity on lengths 0..n.
func TestPropListRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		terms := make([]Term, len(xs))
		for i, x := range xs {
			terms[i] = Int(x)
		}
		l := MkList(terms...)
		back, ok := ListSlice(l)
		if !ok || len(back) != len(terms) {
			return false
		}
		for i := range back {
			if back[i] != terms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is reflexive for ground terms built from ints.
func TestPropEqualReflexive(t *testing.T) {
	f := func(xs []int64) bool {
		terms := make([]Term, len(xs))
		for i, x := range xs {
			terms[i] = Int(x)
		}
		l := MkList(terms...)
		return Equal(l, l) && Ground(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matching a renamed pattern against the original always succeeds.
func TestPropRenameMatches(t *testing.T) {
	h := NewHeap()
	f := func(n uint8) bool {
		k := int(n%5) + 1
		args := make([]Term, k)
		for i := range args {
			if i%2 == 0 {
				args[i] = h.NewVar("V")
			} else {
				args[i] = Int(int64(i))
			}
		}
		orig := NewCompound("f", args...)
		ren := Rename(orig, h, map[*Var]*Var{})
		res, _ := Match(ren, Resolve(orig), Bindings{})
		// orig has unbound vars, so matching may suspend but never fail.
		return res != MatchNo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
