package parser

import "fmt"

// fmtSprintf isolates the fmt dependency for error construction.
func fmtSprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
