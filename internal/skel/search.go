package skel

import (
	"sync"
	"sync/atomic"
)

// SearchProblem describes an or-parallel tree search — the paper's "search"
// motif area, and the structure or-parallel Prologs provide: the user
// supplies the node expansion and goal test; the skeleton explores the tree
// with a pool of workers.
type SearchProblem[S any] interface {
	// Expand returns the children of a search state (empty = dead end).
	Expand(s S) []S
	// IsGoal reports whether the state is a solution.
	IsGoal(s S) bool
}

// SearchOptions configures the search skeleton.
type SearchOptions struct {
	// Workers is the exploration worker count; minimum 1.
	Workers int
	// FirstOnly stops at the first solution found instead of counting all.
	FirstOnly bool
}

// Search explores the tree rooted at start and returns the solutions found
// (all of them, or one if FirstOnly). Work is distributed by expanding the
// frontier breadth-first until it has at least one subtree per worker, then
// farming the subtrees dynamically — the standard or-parallel execution
// scheme.
func Search[S any](problem SearchProblem[S], start S, opts SearchOptions) ([]S, *Stats) {
	p := opts.Workers
	if p < 1 {
		p = 1
	}
	stats := &Stats{UnitsPerWorker: make([]int64, p)}

	// Grow a frontier of independent subtrees.
	frontier := []S{start}
	var preSolutions []S
	for len(frontier) > 0 && len(frontier) < 4*p {
		next := frontier[:0:0]
		for _, s := range frontier {
			if problem.IsGoal(s) {
				preSolutions = append(preSolutions, s)
				if opts.FirstOnly {
					return preSolutions[:1], stats
				}
				continue
			}
			next = append(next, problem.Expand(s)...)
		}
		if len(next) == 0 {
			return preSolutions, stats
		}
		frontier = next
	}

	var stop atomic.Bool
	var mu sync.Mutex
	solutions := preSolutions

	var explore func(s S, w int)
	explore = func(s S, w int) {
		if stop.Load() {
			return
		}
		stats.UnitsPerWorker[w]++ // each worker writes only its own slot
		if problem.IsGoal(s) {
			mu.Lock()
			solutions = append(solutions, s)
			mu.Unlock()
			if opts.FirstOnly {
				stop.Store(true)
			}
			return
		}
		for _, c := range problem.Expand(s) {
			explore(c, w)
			if stop.Load() {
				return
			}
		}
	}

	idx := make(chan int, len(frontier))
	for i := range frontier {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		w := w
		waitGroupGo(&wg, func() {
			for i := range idx {
				if stop.Load() {
					return
				}
				explore(frontier[i], w)
			}
		})
	}
	wg.Wait()
	return solutions, stats
}

// NQueens is a ready-made search problem: place n queens on an n×n board.
// A state is a prefix assignment of queens, one per row.
type NQueens struct {
	// N is the board size.
	N int
}

// NQState is a partial placement: Cols[i] is the column of the queen in
// row i.
type NQState struct {
	Cols []int8
	N    int
}

// Expand implements SearchProblem.
func (q NQueens) Expand(s NQState) []NQState {
	row := len(s.Cols)
	if row >= q.N {
		return nil
	}
	var out []NQState
	for c := 0; c < q.N; c++ {
		ok := true
		for r, pc := range s.Cols {
			d := row - r
			if int(pc) == c || int(pc) == c-d || int(pc) == c+d {
				ok = false
				break
			}
		}
		if ok {
			cols := make([]int8, row+1)
			copy(cols, s.Cols)
			cols[row] = int8(c)
			out = append(out, NQState{Cols: cols, N: q.N})
		}
	}
	return out
}

// IsGoal implements SearchProblem.
func (q NQueens) IsGoal(s NQState) bool { return len(s.Cols) == q.N }

// Start returns the empty placement.
func (q NQueens) Start() NQState { return NQState{N: q.N} }
