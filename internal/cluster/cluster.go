// Package cluster distributes motif jobs across real processes: a
// coordinator shards incoming jobs over registered motifd worker daemons,
// turning the paper's Server ∘ Rand composition into actual message passing
// between machines instead of goroutines inside one.
//
// The shape mirrors the motifs. Each worker is a "processor" running the
// in-process serving layer (internal/serve); the coordinator is the server
// front end that ships a node of work to a processor chosen by a placement
// policy: Rand (uniform random — Tree-Reduce-1's random shipping), Label
// (sticky hash pre-assignment — Tree-Reduce-2's labels, siblings
// co-located), or LeastLoaded (the Scheduler motif, fed by heartbeat
// queue-depth reports).
//
// Real shipping introduces failure modes the in-process pool never sees,
// and this package owns them: worker death is detected by missed
// heartbeats; an in-flight job whose worker died is retried on a different
// worker with bounded attempts and jittered backoff; a saturated worker's
// 429 + Retry-After propagates back into re-placement rather than
// hammering the same queue. Jobs are pure computations, so re-running one
// elsewhere is always safe.
//
// Observability reuses internal/trace and internal/metrics: the
// coordinator emits ship/deliver events for every placement and completion
// and can merge the live workers' own event streams into one Chrome trace,
// so a single Perfetto timeline shows the whole cluster.
package cluster

import "time"

// WorkerInfo is the registration body a worker POSTs to
// /cluster/v1/register when it joins the cluster.
type WorkerInfo struct {
	// ID names the worker; re-registering under the same ID replaces the
	// previous registration (a restarted worker resumes its identity).
	ID string `json:"id"`
	// Addr is the base URL of the worker's serving API, e.g.
	// "http://10.0.0.7:8077"; the coordinator ships jobs to Addr+"/v1/jobs".
	Addr string `json:"addr"`
	// Workers is the worker's local pool size; QueueCap its admission
	// bound. Both are informational (metrics, trace lane layout).
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
}

// RegisterResponse tells a newly registered worker the cluster's timing
// contract.
type RegisterResponse struct {
	// Index is the worker's small dense index, used as its trace lane.
	Index int `json:"index"`
	// HeartbeatMillis is the interval the coordinator expects heartbeats
	// at; ExpiryMillis is how long it waits before declaring the worker
	// dead.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	ExpiryMillis    int64 `json:"expiry_ms"`
}

// Heartbeat is the periodic load report a worker POSTs to
// /cluster/v1/heartbeat. Queue depth and in-flight count feed the
// LeastLoaded placement policy; uptime lets the coordinator align the
// worker's trace clock with its own when merging timelines.
type Heartbeat struct {
	ID         string `json:"id"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
	Done       int64  `json:"done"`
	Failed     int64  `json:"failed"`
	// UptimeMicros is the worker pool's age in microseconds — the Cycle
	// domain of its trace events.
	UptimeMicros int64 `json:"uptime_us"`
	// MemoHits/MemoMisses are the worker's content-addressed memo cache
	// counters, zero when memoization is disabled there. The coordinator
	// keeps the latest values per worker and aggregates them into a
	// cluster-wide hit-rate on /metrics.
	MemoHits   int64 `json:"memo_hits,omitempty"`
	MemoMisses int64 `json:"memo_misses,omitempty"`
	// MemoRemoteHits counts local misses this worker answered by fetching
	// the entry from a peer (the memoshare tier). The coordinator adds
	// them to the cluster-wide warm hit-rate: a peer-served result is a
	// cluster hit even though the local cache missed.
	MemoRemoteHits int64 `json:"memo_remote_hits,omitempty"`
	// MemoFills is the worker's recent-fills window: full hex digests of
	// transferable (Bytes) entries filled since the last heartbeat. It
	// feeds the coordinator's digest→workers index so peers can locate
	// entries; bounded on the worker side, so it advertises recency, not
	// the whole cache.
	MemoFills []string `json:"memo_fills,omitempty"`
	// Tenants is the worker's per-tenant admission-queue depth (non-empty
	// queues only). The coordinator aggregates the latest reports into the
	// cluster-wide per-tenant load view on /metrics.
	Tenants map[string]int `json:"tenants,omitempty"`
}

// WorkerView is a placement policy's read-only view of one live worker.
type WorkerView struct {
	ID    string
	Index int
	Addr  string
	// Load is the worker's last-reported queue depth plus in-flight jobs.
	Load int
	// Saturated reports that a 429 backoff window from this worker is
	// still open; placement prefers unsaturated workers.
	Saturated bool
}

// Cluster timing defaults, shared by the coordinator and the worker agent.
const (
	// DefaultHeartbeatInterval is how often workers report in.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultExpiryFactor times the heartbeat interval gives the default
	// liveness window: a worker missing this many beats is dead.
	DefaultExpiryFactor = 4
)
