package motifs

import (
	"math/rand"
	"testing"

	"repro/internal/term"
)

// Stress tests: larger instances of each motif, asserting the same
// invariants as the small tests. They keep the simulated machine honest
// about scale (queue compaction, suspension bookkeeping, port growth).

func TestStressTreeReduce1LargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tree := randomIntTree(1024, rand.New(rand.NewSource(71)))
	val, res, err := RunTreeReduce1(motifsArithSum(), tree, RunConfig{Procs: 16, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	want := sumLeaves(tree)
	if val != term.Term(term.Int(want)) {
		t.Fatalf("value = %s, want %d", term.Sprint(val), want)
	}
	if res.SuspendedAtEnd != 0 {
		t.Fatalf("suspended = %d", res.SuspendedAtEnd)
	}
	// All 16 processors participated.
	busy := 0
	for _, r := range res.Metrics.Reductions {
		if r > 0 {
			busy++
		}
	}
	if busy != 16 {
		t.Fatalf("only %d/16 processors busy", busy)
	}
}

func TestStressTreeReduce2LargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tree := randomIntTree(512, rand.New(rand.NewSource(72)))
	val, res, err := RunTreeReduce2(motifsArithSum(), tree, SiblingLabels,
		RunConfig{Procs: 8, Seed: 72, Watch: []string{"eval/4"}})
	if err != nil {
		t.Fatal(err)
	}
	if val != term.Term(term.Int(sumLeaves(tree))) {
		t.Fatalf("value = %s", term.Sprint(val))
	}
	for p, peak := range res.PeakLive["eval/4"] {
		if peak > 1 {
			t.Fatalf("proc %d peak evals %d > 1 at scale", p, peak)
		}
	}
}

func TestStressSchedulerManyTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var tasks []term.Term
	for i := 0; i < 300; i++ {
		tasks = append(tasks, term.NewCompound("sq", term.Int(int64(i))))
	}
	results, res, err := RunScheduler("task(sq(N), R) :- R is N * N.", tasks,
		RunConfig{Procs: 8, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 300 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if term.Walk(r) != term.Term(term.Int(int64(i*i))) {
			t.Fatalf("result[%d] = %s", i, term.Sprint(r))
		}
	}
	if res.SuspendedAtEnd != 0 {
		t.Fatal("suspended processes at end")
	}
}

func TestStressSearchDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// fib(14) = 377 solutions at K=12.
	sols, res, err := RunSearch(fibStringsSrc, startState(12), RunConfig{Procs: 8, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 377 {
		t.Fatalf("solutions = %d, want 377", len(sols))
	}
	if res.SuspendedAtEnd != 0 {
		t.Fatal("suspended at end")
	}
}

// motifsArithSum returns an eval that only adds, so large-tree results stay
// in int64 range regardless of tree shape.
func motifsArithSum() string {
	return `eval(_, L, R, Value) :- Value is L + R.`
}

func sumLeaves(t *BinTree) int64 {
	if t.IsLeaf() {
		return int64(t.Leaf.(term.Int))
	}
	return sumLeaves(t.L) + sumLeaves(t.R)
}
