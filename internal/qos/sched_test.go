package qos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drain pops everything currently queued without blocking, returning the
// values in dispatch order.
func drain(s *Scheduler) []any {
	var out []any
	for {
		v, ok := s.Pop(false)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestClassOrderWithinTenant(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 16})
	for _, c := range []Class{ClassLow, ClassNormal, ClassHigh, ClassNormal} {
		if _, err := s.Push(c.String(), "a", c); err != nil {
			t.Fatalf("push %v: %v", c, err)
		}
	}
	got := drain(s)
	want := []any{"high", "normal", "normal", "low"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
}

func TestWeightedFairRatio(t *testing.T) {
	// Two saturated tenants at weights 2:1 must see admitted work drain in
	// a 2:1 ratio over any full number of DRR rounds.
	s := New(Options{Fair: true, Capacity: 256, TenantDepth: 128,
		Weights: map[string]int{"heavy": 2, "light": 1}})
	for i := 0; i < 90; i++ {
		if _, err := s.Push("heavy", "heavy", ClassNormal); err != nil {
			t.Fatalf("push heavy: %v", err)
		}
	}
	for i := 0; i < 90; i++ {
		if _, err := s.Push("light", "light", ClassNormal); err != nil {
			t.Fatalf("push light: %v", err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 60; i++ { // 20 full rounds of (2 heavy + 1 light)
		v, ok := s.Pop(false)
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		counts[v.(string)]++
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("drain ratio heavy:light = %d:%d (%.2f), want ~2.0",
			counts["heavy"], counts["light"], ratio)
	}
}

func TestNoStarvationBound(t *testing.T) {
	// A tenant arriving behind 8 saturated weight-1 tenants must be served
	// within one DRR round: at most sum(other weights) dispatches before
	// its first job runs.
	s := New(Options{Fair: true, Capacity: 1024, TenantDepth: 64})
	const others = 8
	for i := 0; i < others; i++ {
		name := fmt.Sprintf("t%d", i)
		for k := 0; k < 32; k++ {
			if _, err := s.Push(name, name, ClassNormal); err != nil {
				t.Fatalf("push: %v", err)
			}
		}
	}
	if _, err := s.Push("late", "late", ClassNormal); err != nil {
		t.Fatalf("push late: %v", err)
	}
	for i := 0; i < others+1; i++ {
		v, ok := s.Pop(false)
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		if v.(string) == "late" {
			return
		}
	}
	t.Fatalf("late tenant not served within %d dispatches (one round)", others+1)
}

func TestTenantBoundShedsOnlyThatTenant(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 64, TenantDepth: 4})
	for i := 0; i < 4; i++ {
		if _, err := s.Push(i, "flood", ClassNormal); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	_, err := s.Push(99, "flood", ClassNormal)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Scope != "tenant" || shed.Tenant != "flood" {
		t.Fatalf("flood push: got %v, want tenant-scope ShedError", err)
	}
	if shed.RetryAfterSeconds() < 1 {
		t.Fatalf("Retry-After %d, want >= 1", shed.RetryAfterSeconds())
	}
	// A different tenant still has room.
	if _, err := s.Push("ok", "quiet", ClassNormal); err != nil {
		t.Fatalf("quiet tenant shed alongside the flood: %v", err)
	}
}

func TestPreemptWithinTenant(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 64, TenantDepth: 2})
	if _, err := s.Push("low-old", "a", ClassLow); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push("low-young", "a", ClassLow); err != nil {
		t.Fatal(err)
	}
	victim, err := s.Push("high", "a", ClassHigh)
	if err != nil {
		t.Fatalf("high push: %v", err)
	}
	if victim != "low-young" {
		t.Fatalf("victim %v, want the youngest low job", victim)
	}
	got := drain(s)
	if fmt.Sprint(got) != fmt.Sprint([]any{"high", "low-old"}) {
		t.Fatalf("dispatch order %v", got)
	}
	// Equal class never preempts.
	for i := 0; i < 2; i++ {
		if _, err := s.Push(i, "b", ClassHigh); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Push(2, "b", ClassHigh); err == nil {
		t.Fatal("equal-class arrival preempted a queued job")
	}
}

func TestPreemptGlobalYoungestLowest(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 3, TenantDepth: 3})
	if _, err := s.Push("a-norm", "a", ClassNormal); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push("b-low-old", "b", ClassLow); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push("c-low-young", "c", ClassLow); err != nil {
		t.Fatal(err)
	}
	victim, err := s.Push("high", "d", ClassHigh)
	if err != nil {
		t.Fatalf("high push at global bound: %v", err)
	}
	if victim != "c-low-young" {
		t.Fatalf("victim %v, want the youngest of the lowest class", victim)
	}
	if s.Depth() != 3 {
		t.Fatalf("depth %d after preempting admission, want 3", s.Depth())
	}
	// A low arrival at the global bound cannot preempt and is shed with
	// scope "global".
	_, err = s.Push("low", "e", ClassLow)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Scope != "global" {
		t.Fatalf("low push at global bound: got %v, want global-scope ShedError", err)
	}
}

// TestPreemptionNeverTouchesDispatchedWork hammers the scheduler from
// concurrent pushers (low class), preempting pushers (high class), and
// popping workers, then asserts the victim set and the dispatched set are
// disjoint and every job is accounted for exactly once. Run under -race
// this is the "preemption never touches running work" invariant: a job
// handed to a worker can never later be returned as a victim.
func TestPreemptionNeverTouchesDispatchedWork(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 32, TenantDepth: 8})
	const (
		pushers    = 4
		perPusher  = 200
		preempters = 2
		perPreempt = 100
	)
	var (
		mu         sync.Mutex
		dispatched = map[int]bool{}
		victims    = map[int]bool{}
		shed       int
	)
	var pushWG sync.WaitGroup
	record := func(m map[int]bool, v any) {
		mu.Lock()
		if m[v.(int)] {
			mu.Unlock()
			t.Errorf("job %v seen twice", v)
			return
		}
		m[v.(int)] = true
		mu.Unlock()
	}
	for p := 0; p < pushers; p++ {
		pushWG.Add(1)
		go func(p int) {
			defer pushWG.Done()
			for i := 0; i < perPusher; i++ {
				id := p*perPusher + i
				victim, err := s.Push(id, fmt.Sprintf("t%d", p), ClassLow)
				if victim != nil {
					record(victims, victim)
				}
				if err != nil {
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}
		}(p)
	}
	for p := 0; p < preempters; p++ {
		pushWG.Add(1)
		go func(p int) {
			defer pushWG.Done()
			for i := 0; i < perPreempt; i++ {
				id := 1_000_000 + p*perPreempt + i
				victim, err := s.Push(id, fmt.Sprintf("hi%d", p), ClassHigh)
				if victim != nil {
					record(victims, victim)
				}
				if err != nil {
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}
		}(p)
	}
	var popWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		popWG.Add(1)
		go func() {
			defer popWG.Done()
			for {
				v, ok := s.Pop(true)
				if !ok {
					return
				}
				record(dispatched, v)
				s.ObserveDone("t", time.Microsecond)
			}
		}()
	}
	pushWG.Wait()
	s.Close()
	popWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	for id := range victims {
		if dispatched[id] {
			t.Fatalf("job %d was both dispatched and preempted", id)
		}
	}
	total := pushers*perPusher + preempters*perPreempt
	if got := len(dispatched) + len(victims) + shed; got != total {
		t.Fatalf("accounting: dispatched %d + victims %d + shed %d = %d, want %d",
			len(dispatched), len(victims), shed, got, total)
	}
}

func TestFIFOModeIsTenantBlind(t *testing.T) {
	s := New(Options{Fair: false, Capacity: 4})
	for i, c := range []Class{ClassLow, ClassHigh, ClassNormal, ClassLow} {
		if _, err := s.Push(i, fmt.Sprintf("t%d", i%2), c); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// No preemption at the bound, even for a high arrival.
	victim, err := s.Push(99, "t0", ClassHigh)
	if victim != nil || err == nil {
		t.Fatalf("fifo bound: victim %v err %v, want nil victim and a ShedError", victim, err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Scope != "global" {
		t.Fatalf("fifo shed error: %v", err)
	}
	got := drain(s)
	if fmt.Sprint(got) != fmt.Sprint([]any{0, 1, 2, 3}) {
		t.Fatalf("fifo order %v, want strict arrival order", got)
	}
}

func TestRetryAfterScalesWithDrainTime(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 256, TenantDepth: 128, Workers: 2})
	// 100ms observed service time.
	for i := 0; i < 20; i++ {
		s.ObserveDone("a", 100*time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Push(i, "a", ClassNormal); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// 40 queued × 100ms / 2 workers = ~2s.
	got := s.RetryAfter("a")
	if got < 1500*time.Millisecond || got > 3*time.Second {
		t.Fatalf("RetryAfter = %v, want ~2s", got)
	}
	// An idle tenant gets the 1s floor.
	if got := s.RetryAfter("idle"); got != time.Second {
		t.Fatalf("idle tenant RetryAfter = %v, want 1s", got)
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 8})
	if _, err := s.Push("x", "a", ClassNormal); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Push("y", "a", ClassNormal); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if v, ok := s.Pop(true); !ok || v != "x" {
		t.Fatalf("pop after close: %v %v, want queued job", v, ok)
	}
	if _, ok := s.Pop(true); ok {
		t.Fatal("pop after drain returned a job")
	}
}

func TestSnapshotAccounting(t *testing.T) {
	s := New(Options{Fair: true, Capacity: 8, TenantDepth: 2,
		Weights: map[string]int{"a": 3}})
	if _, err := s.Push(1, "a", ClassNormal); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(2, "a", ClassNormal); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(3, "a", ClassNormal); err == nil {
		t.Fatal("expected tenant shed")
	}
	if _, ok := s.Pop(false); !ok {
		t.Fatal("pop")
	}
	s.ObserveDone("a", 5*time.Millisecond)
	snap := s.Snapshot()
	if !snap.Fair || snap.Admitted != 2 || snap.Shed != 1 || snap.Dispatched != 1 || snap.Done != 1 {
		t.Fatalf("aggregate snapshot: %+v", snap)
	}
	if len(snap.PerTenant) != 1 {
		t.Fatalf("per-tenant rows: %+v", snap.PerTenant)
	}
	row := snap.PerTenant[0]
	if row.Tenant != "a" || row.Weight != 3 || row.Depth != 1 || row.Admitted != 2 || row.Shed != 1 {
		t.Fatalf("tenant row: %+v", row)
	}
	depths := s.TenantDepths()
	if depths["a"] != 1 || len(depths) != 1 {
		t.Fatalf("TenantDepths: %v", depths)
	}
}
