# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact CI
# steps (format gate, build, vet, tests, race tests, bench smoke).

GO ?= go

.PHONY: ci fmt-check build vet test race bench-smoke

ci: fmt-check build vet test race bench-smoke
	@echo "ci: all steps passed"

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/skel/... ./internal/motifs/...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
