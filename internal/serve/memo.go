package serve

import (
	"encoding/binary"
	"encoding/json"

	"repro/internal/bio"
	"repro/internal/jobs"
	"repro/internal/memo"
)

// ContentKey returns the request's job-level content digest: a canonical
// hash of everything that determines the result, excluding identity-only
// fields (client ID, deadline, placement label). Two requests share a key
// exactly when running either produces the same result payload, so the
// serving layer can answer one from the other's cached outcome and
// collapse their concurrent executions. The cluster coordinator reuses it
// to derive placement labels (equal content → same worker → warm cache)
// and to collapse identical in-flight submissions. The request must
// already be validated (validation normalizes the specs the digest
// covers).
func ContentKey(req *JobRequest) (memo.Key, bool) {
	switch req.Type {
	case JobAlign:
		d := req.Align.Digest()
		return memo.Sum("serve.job", []byte(req.Type), d[:]), true
	case JobTree:
		t := req.Tree
		shape, err := treeShape(t.Shape)
		if err != nil {
			return memo.Key{}, false
		}
		var nums [24]byte
		binary.BigEndian.PutUint64(nums[0:], uint64(int64(t.Leaves)))
		binary.BigEndian.PutUint64(nums[8:], uint64(int64(shape)))
		binary.BigEndian.PutUint64(nums[16:], uint64(t.Seed))
		// NodeCostMicros shapes timing, not the value, so it is excluded:
		// a warm resubmission of a deliberately slow tree answers from the
		// fast run's result.
		return memo.Sum("serve.job", []byte(req.Type), nums[:]), true
	case JobStrand:
		st := req.Strand
		var nums [24]byte
		binary.BigEndian.PutUint64(nums[0:], uint64(int64(st.Procs)))
		binary.BigEndian.PutUint64(nums[8:], uint64(st.Seed))
		binary.BigEndian.PutUint64(nums[16:], uint64(st.MaxCycles))
		return memo.Sum("serve.job", []byte(req.Type),
			[]byte(st.Source), []byte(st.Goal), nums[:]), true
	case JobPipeline:
		// Deliberately uncacheable at the job level: pipeline value lives in
		// the stream, and the engine's per-stage prefix digests already reuse
		// identical upstream work across jobs, including partial overlaps the
		// whole-job digest could never express.
		return memo.Key{}, false
	case JobSearch:
		if req.Search.FirstOnly {
			// Deliberately uncacheable: which match a FirstOnly search commits
			// to is unspecified (the or-parallel cut races), so two equal
			// submissions may legitimately hold different answers. Serving one
			// job's winner as another's would silently promote a race outcome
			// into a cross-job contract. Per-job determinism is provided by
			// the WAL decision record instead, which binds exactly one job's
			// lives together.
			return memo.Key{}, false
		}
		// Exhaustive searches report every occurrence in canonical
		// (seq_index, pos) order, so equal specs produce equal results.
		return memo.Sum("serve.job", append([][]byte{[]byte(req.Type)}, req.Search.DigestFields()...)...), true
	case JobGrid:
		// Each Jacobi sweep is a pure function of the previous grid, so the
		// relaxed field is bitwise identical for any worker count or
		// crash/resume history.
		return memo.Sum("serve.job", append([][]byte{[]byte(req.Type)}, req.Grid.DigestFields()...)...), true
	case JobSort:
		return memo.Sum("serve.job", append([][]byte{[]byte(req.Type)}, req.Sort.DigestFields()...)...), true
	default:
		return memo.Key{}, false
	}
}

// cachedResult is the serialized payload stored in the job-level cache:
// exactly the result block of a successful job, without its identity.
type cachedResult struct {
	Align  *bio.AlignJobResult `json:"align,omitempty"`
	Tree   *TreeResult         `json:"tree,omitempty"`
	Strand *StrandResult       `json:"strand,omitempty"`
	Search *jobs.SearchResult  `json:"search,omitempty"`
	Grid   *jobs.GridResult    `json:"grid,omitempty"`
	Sort   *jobs.SortResult    `json:"sort,omitempty"`
}

// marshalCached serializes a finished job's result payload, or nil when
// there is nothing cacheable (test bodies, failed jobs).
func marshalCached(j *Job) []byte {
	j.mu.Lock()
	c := cachedResult{Align: j.align, Tree: j.tree, Strand: j.strand,
		Search: j.search, Grid: j.grid, Sort: j.sortRes}
	j.mu.Unlock()
	if c.Align == nil && c.Tree == nil && c.Strand == nil &&
		c.Search == nil && c.Grid == nil && c.Sort == nil {
		return nil
	}
	blob, err := json.Marshal(c)
	if err != nil {
		return nil
	}
	return blob
}

// applyCached populates the job from a cached result payload, reporting
// whether the payload decoded and matched the job's type.
func applyCached(j *Job, blob []byte) bool {
	var c cachedResult
	if err := json.Unmarshal(blob, &c); err != nil {
		return false
	}
	switch j.req.Type {
	case JobAlign:
		if c.Align == nil {
			return false
		}
	case JobTree:
		if c.Tree == nil {
			return false
		}
	case JobStrand:
		if c.Strand == nil {
			return false
		}
	case JobSearch:
		if c.Search == nil {
			return false
		}
	case JobGrid:
		if c.Grid == nil {
			return false
		}
	case JobSort:
		if c.Sort == nil {
			return false
		}
	default:
		return false
	}
	j.align, j.tree, j.strand = c.Align, c.Tree, c.Strand
	j.search, j.grid, j.sortRes = c.Search, c.Grid, c.Sort
	return true
}
