package bio

import (
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"
)

// checkKernelAgainstRef asserts the optimized kernel reproduces the
// reference implementation exactly: byte-identical rows, equal score.
func checkKernelAgainstRef(t *testing.T, a, b Seq) {
	t.Helper()
	wantA, wantB, wantScore := gotohAlignRef(a, b)
	ra, rb, score := GotohAlign(a, b)
	if string(ra) != wantA || string(rb) != wantB || score != wantScore {
		t.Fatalf("kernel diverges from reference on (%q, %q):\n got %q %q %d\nwant %q %q %d",
			a, b, ra, rb, score, wantA, wantB, wantScore)
	}
}

// TestGotohDifferentialEdgeCases pins the corners: empty inputs,
// single-base inputs, and pairs so length-skewed that the optimum is one
// long gap (the "all-gap-favoring" shape).
func TestGotohDifferentialEdgeCases(t *testing.T) {
	cases := [][2]string{
		{"", ""},
		{"", "A"},
		{"A", ""},
		{"", "ACGUACGU"},
		{"A", "A"},
		{"A", "U"},
		{"A", "UUUUUUUUUUUUUUUU"}, // one base against a wall of mismatches
		{"ACGU", "ACGU"},
		{"AACCCGGUU", "AACGGUU"},
		{"ACACACACAC", "GUGUGUGUGU"},
		{"AAAAAAAAAA", "AAAAA"},
		{"AC", "CA"},
	}
	for _, c := range cases {
		checkKernelAgainstRef(t, Seq(c[0]), Seq(c[1]))
	}
}

// TestGotohDifferentialRandom drives the optimized kernel against the
// reference on randomized pairs: related (mutated) pairs, unrelated
// pairs, and heavily length-skewed pairs.
func TestGotohDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		var a, b Seq
		switch trial % 3 {
		case 0: // related
			a = RandomSeq(1+rng.Intn(80), rng)
			b = Mutate(a, 0.2, 0.05, rng)
		case 1: // unrelated
			a = RandomSeq(1+rng.Intn(80), rng)
			b = RandomSeq(1+rng.Intn(80), rng)
		default: // length-skewed: gaps dominate
			a = RandomSeq(1+rng.Intn(8), rng)
			b = RandomSeq(40+rng.Intn(40), rng)
		}
		checkKernelAgainstRef(t, a, b)
	}
}

// TestGotohAllocs is the campaign's allocation gate: once the scratch
// pool is warm, a kernel call may allocate only the result-row buffer
// (≤ 2 allocs/op; the CI bench-gate enforces the same bound on the
// committed benchmark numbers).
func TestGotohAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := RandomSeq(200, rng)
	b := Mutate(a, 0.1, 0.02, rng)
	GotohAlign(a, b) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		GotohAlign(a, b)
	})
	if allocs > 2 {
		t.Fatalf("steady-state GotohAlign allocates %.1f times per call, want <= 2", allocs)
	}
	GotohAlignBanded(a, b, 16) // warm the banded shape
	allocs = testing.AllocsPerRun(20, func() {
		GotohAlignBanded(a, b, 16)
	})
	if allocs > 2 {
		t.Fatalf("steady-state GotohAlignBanded allocates %.1f times per call, want <= 2", allocs)
	}
}

// TestGotohBandedWideEqualsExact: with the band covering the whole
// matrix, the banded kernel runs its own code path (no fallback) and
// must reproduce the exact kernel bit for bit.
func TestGotohBandedWideEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		a := RandomSeq(1+rng.Intn(60), rng)
		b := Mutate(a, 0.25, 0.08, rng)
		band := len(a) + len(b) // superset of every cell
		ra, rb, score := GotohAlignBanded(a, b, band)
		wa, wb, wscore := GotohAlign(a, b)
		if !ra.Equal(wa) || !rb.Equal(wb) || score != wscore {
			t.Fatalf("wide band diverges on (%q, %q):\n got %q %q %d\nwant %q %q %d",
				a, b, ra, rb, score, wa, wb, wscore)
		}
	}
}

// TestGotohBandedInvariants: any feasible band yields a valid global
// alignment (rows degap to the inputs, score matches a recomputation,
// and never beats the exact optimum).
func TestGotohBandedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 120; trial++ {
		a := RandomSeq(1+rng.Intn(60), rng)
		b := Mutate(a, 0.3, 0.1, rng)
		band := 1 + rng.Intn(12)
		ra, rb, score := GotohAlignBanded(a, b, band)
		if len(ra) != len(rb) {
			t.Fatalf("ragged banded alignment %q %q", ra, rb)
		}
		if strings.ReplaceAll(string(ra), "-", "") != string(a) ||
			strings.ReplaceAll(string(rb), "-", "") != string(b) {
			t.Fatalf("banded degap mismatch (band %d): %q %q", band, ra, rb)
		}
		if got := affineScore(string(ra), string(rb)); got != score {
			t.Fatalf("banded score %d != recomputed %d (band %d)", score, got, band)
		}
		_, _, exact := GotohAlign(a, b)
		if score > exact {
			t.Fatalf("banded score %d beats exact optimum %d (band %d)", score, exact, band)
		}
	}
}

// TestGotohBandedInfeasibleFallsBack: a band narrower than the length
// difference cannot reach the final cell, so the kernel must fall back
// to the exact result.
func TestGotohBandedInfeasibleFallsBack(t *testing.T) {
	a := Seq("ACGU")
	b := Seq("ACGUACGUACGUACGU")
	for _, band := range []int{0, -3, 1, len(b) - len(a) - 1} {
		ra, rb, score := GotohAlignBanded(a, b, band)
		wa, wb, wscore := GotohAlign(a, b)
		if !ra.Equal(wa) || !rb.Equal(wb) || score != wscore {
			t.Fatalf("infeasible band %d did not fall back to exact", band)
		}
	}
}

// TestDistanceBanded: a banded distance is a distance (0 for identical
// inputs, monotone-ish in divergence for a wide band).
func TestDistanceBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	s := RandomSeq(80, rng)
	if d := DistanceBanded(s, s, 8); d != 0 {
		t.Fatalf("banded self distance = %v", d)
	}
	near := Mutate(s, 0.05, 0, rng)
	far := RandomSeq(80, rng)
	dn := DistanceBanded(s, near, 16)
	df := DistanceBanded(s, far, 16)
	if dn >= df {
		t.Fatalf("banded near distance %v >= far distance %v", dn, df)
	}
}

// TestAlignJobBandedEndToEnd: a banded job runs through the same
// pipeline and yields a valid alignment of the same family.
func TestAlignJobBandedEndToEnd(t *testing.T) {
	job := &AlignJob{N: 6, Len: 60, Seed: 11, Band: 12}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(t.Context(), skelOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := Alignment(res.Rows).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &AlignJob{N: 6, Band: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative band accepted")
	}
	bad = &AlignJob{N: 6, Band: 20_000}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized band accepted")
	}
}

// Golden digests captured from the pre-refactor implementation (string
// Seq, no Band field). The []byte representation and the banded option
// must not move them: the memo cache and the cluster's digest-derived
// placement labels survive the kernel upgrade only if these stay fixed.
func TestAlignJobDigestGolden(t *testing.T) {
	cases := []struct {
		job  *AlignJob
		want string
	}{
		{&AlignJob{N: 8, Len: 60, Seed: 7},
			"c432c11fea837174c06c5c1da8f02745e5816315f1c032fc4d7d8d953d494bdf"},
		{&AlignJob{Seqs: []string{"ACGU", "ACGA"}},
			"e6e0dad54da991bc30a45c76dc0d50822029ecc11c10315cdfe2587def1cbf58"},
		{&AlignJob{Names: []string{"a", "b"}, Seqs: []string{"ACGUACGU", "ACGAACGA"}},
			"02ab7ada4ba674fd2ad991aa3952f2dadf488887895274307cf796b9ea47243e"},
		{&AlignJob{N: 16, Len: 120, Seed: 42},
			"1cd97d5ba3ea41ffdc8d123167a3566088f0791d2cbbf2471cfb8bd8365c5bc7"},
	}
	for i, c := range cases {
		k := c.job.Digest()
		if got := hex.EncodeToString(k[:]); got != c.want {
			t.Fatalf("job %d digest drifted:\n got %s\nwant %s", i, got, c.want)
		}
	}
	k := Seq("ACGUACGUAC").Digest()
	const wantSeq = "dbe7359450f18ebf00c3f987e18a19f1d43db96d1efeb2acac1e237ea585270a"
	if got := hex.EncodeToString(k[:]); got != wantSeq {
		t.Fatalf("sequence digest drifted:\n got %s\nwant %s", got, wantSeq)
	}
}

// TestAlignJobDigestBand: band 0 hashes identically to the pre-band
// encoding; a nonzero band yields a distinct digest (banded results may
// differ, so they must never answer each other's cache lookups).
func TestAlignJobDigestBand(t *testing.T) {
	base := &AlignJob{N: 8, Len: 60, Seed: 7}
	banded := &AlignJob{N: 8, Len: 60, Seed: 7, Band: 16}
	if base.Digest() != (&AlignJob{N: 8, Len: 60, Seed: 7, Band: 0}).Digest() {
		t.Fatal("explicit Band:0 changed the digest")
	}
	if base.Digest() == banded.Digest() {
		t.Fatal("banded job digests equal to exact job")
	}
	if banded.Digest() != (&AlignJob{N: 8, Len: 60, Seed: 7, Band: 16}).Digest() {
		t.Fatal("equal banded jobs digest differently")
	}
}

// FuzzGotohKernel is the kernel equivalence fuzz target run by the CI
// fuzz sweep: arbitrary byte strings are projected onto the RNA
// alphabet, then the optimized kernel, the reference kernel, and the
// wide-band banded kernel must all agree exactly, and a narrow band must
// still produce a valid (degappable, correctly scored) alignment.
func FuzzGotohKernel(f *testing.F) {
	f.Add([]byte(""), []byte(""), uint8(0))
	f.Add([]byte("A"), []byte(""), uint8(1))
	f.Add([]byte("ACGU"), []byte("ACGU"), uint8(4))
	f.Add([]byte("AACCCGGUU"), []byte("AACGGUU"), uint8(2))
	f.Add([]byte("AAAAAAAA"), []byte("UU"), uint8(3))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, bandSeed uint8) {
		if len(rawA) > 256 || len(rawB) > 256 {
			return
		}
		a := projectSeq(rawA)
		b := projectSeq(rawB)
		wantA, wantB, wantScore := gotohAlignRef(a, b)
		ra, rb, score := GotohAlign(a, b)
		if string(ra) != wantA || string(rb) != wantB || score != wantScore {
			t.Fatalf("kernel diverges on (%q, %q): got %q %q %d want %q %q %d",
				a, b, ra, rb, score, wantA, wantB, wantScore)
		}
		ba, bb, bscore := GotohAlignBanded(a, b, len(a)+len(b))
		if !ba.Equal(ra) || !bb.Equal(rb) || bscore != score {
			t.Fatalf("wide-band kernel diverges on (%q, %q)", a, b)
		}
		band := int(bandSeed%16) + 1
		na, nb, nscore := GotohAlignBanded(a, b, band)
		if strings.ReplaceAll(string(na), "-", "") != string(a) ||
			strings.ReplaceAll(string(nb), "-", "") != string(b) {
			t.Fatalf("narrow-band degap mismatch (band %d) on (%q, %q)", band, a, b)
		}
		if got := affineScore(string(na), string(nb)); got != nscore {
			t.Fatalf("narrow-band score %d != recomputed %d", nscore, got)
		}
		if nscore > score {
			t.Fatalf("narrow-band score %d beats optimum %d", nscore, score)
		}
	})
}

// projectSeq maps arbitrary bytes onto the RNA alphabet.
func projectSeq(raw []byte) Seq {
	s := make(Seq, len(raw))
	for i, c := range raw {
		s[i] = Bases[int(c)%4]
	}
	return s
}
