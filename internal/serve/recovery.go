package serve

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/store"
)

// recoverFromStore rebuilds the job table from the durable store's replayed
// state. Terminal jobs are materialized so polling and idempotent
// resubmission keep working across the restart; incomplete jobs are rebuilt
// under their original IDs and returned for re-admission. Called from New
// before the worker pool starts, so no locking is needed.
func (s *Server) recoverFromStore() []*Job {
	var resume []*Job
	for _, js := range s.cfg.Store.Jobs() {
		var n int64
		if parseJobID(js.ID, "j", &n) && n > s.nextID {
			s.nextID = n
		}
		var j *Job
		if js.Status.Terminal() {
			if j = terminalJobFromStore(js); j == nil {
				continue
			}
		} else {
			var req JobRequest
			if err := json.Unmarshal(js.Request, &req); err != nil || req.validate() != nil {
				// The journaled request no longer decodes (e.g. written by
				// a newer build); mark it failed rather than replaying it
				// forever.
				_ = s.cfg.Store.Failed(js.ID, "unrecoverable journaled request")
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), s.timeoutFor(req))
			j = &Job{
				id:        js.ID,
				req:       req,
				ctx:       ctx,
				cancel:    cancel,
				submitted: time.Now(),
				state:     StateQueued,
				worker:    -1,
			}
			if req.Type == JobPipeline {
				// The re-run resumes from its WAL checkpoints; its stream
				// replays the completed prefix and continues live.
				j.stream = newRecordStream()
			}
			resume = append(resume, j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if js.Client != "" {
			s.byClient[js.Client] = j.id
		}
	}
	return resume
}

// terminalJobFromStore materializes a finished job from its journaled
// result, good for polling and dedup but carrying no live context.
func terminalJobFromStore(js store.JobState) *Job {
	now := time.Now()
	j := &Job{
		id:        js.ID,
		req:       JobRequest{ID: js.Client},
		submitted: now,
		finished:  now,
		worker:    -1,
	}
	var req JobRequest
	if json.Unmarshal(js.Request, &req) == nil {
		j.req.Type = req.Type
	}
	if js.Status == store.StatusDone {
		var st JobStatus
		if err := json.Unmarshal(js.Result, &st); err != nil {
			return nil
		}
		j.state = StateDone
		if st.Type != "" {
			j.req.Type = st.Type
		}
		j.align, j.tree, j.strand, j.pipe = st.Align, st.Tree, st.Strand, st.Pipeline
		j.search, j.grid, j.sortRes = st.Search, st.Grid, st.Sort
	} else {
		j.state = StateError
		j.err = errors.New(js.Error)
	}
	return j
}

// parseJobID extracts the numeric part of an id like "j000042" or
// "c000042" given its prefix.
func parseJobID(id, prefix string, n *int64) bool {
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return false
	}
	var v int64
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + int64(c-'0')
	}
	*n = v
	return true
}
