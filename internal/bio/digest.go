package bio

import (
	"encoding/binary"

	"repro/internal/memo"
	"repro/internal/skel"
)

// Digest returns the sequence's content digest — the leaf key of the memo
// layer. Sequences are normalized to RNA before they reach an alignment
// tree, so equal biological content digests equally regardless of the
// input alphabet casing.
func (s Seq) Digest() memo.Key { return memo.Leaf("bio.seq", []byte(s)) }

// Size estimates the alignment's resident bytes for the memo cache's
// budget accounting: row payloads plus slice/header overhead.
func (a Alignment) Size() int64 {
	size := int64(24) // slice header
	for _, row := range a {
		size += int64(len(row)) + 16
	}
	return size
}

// Digest returns the job's content digest: a canonical hash of everything
// that determines its result (explicit names and sequences, or the
// synthetic family spec, plus the band when banded estimation is on).
// Two jobs share a digest exactly when they are guaranteed to produce
// byte-identical results, which is what lets the serving layer answer
// one from the other's cached outcome and the cluster layer co-locate
// them on a warm worker.
//
// Compatibility invariant, enforced by TestAlignJobDigestGolden: jobs
// with Band == 0 hash exactly as they did before the banded option and
// the []byte sequence representation existed, so memo caches and
// cluster placement labels stay valid across the kernel upgrade. A
// nonzero band appends one extra framed field, which can never collide
// with a band-0 digest of the same job.
func (j *AlignJob) Digest() memo.Key {
	var nums [24]byte
	binary.BigEndian.PutUint64(nums[0:], uint64(int64(j.N)))
	binary.BigEndian.PutUint64(nums[8:], uint64(int64(j.Len)))
	binary.BigEndian.PutUint64(nums[16:], uint64(j.Seed))
	// List lengths are framed explicitly so (names, seqs) splits can never
	// alias each other.
	var counts [16]byte
	binary.BigEndian.PutUint64(counts[0:], uint64(len(j.Names)))
	binary.BigEndian.PutUint64(counts[8:], uint64(len(j.Seqs)))
	fields := make([][]byte, 0, 3+len(j.Names)+len(j.Seqs))
	fields = append(fields, nums[:], counts[:])
	for _, n := range j.Names {
		fields = append(fields, []byte(n))
	}
	for _, s := range j.Seqs {
		fields = append(fields, []byte(s))
	}
	if j.Band != 0 {
		var band [8]byte
		binary.BigEndian.PutUint64(band[:], uint64(int64(j.Band)))
		fields = append(fields, band[:])
	}
	return memo.Sum("bio.alignjob", fields...)
}

// alignTreeDigests computes the content digest of every subtree of the
// skeleton alignment tree, in the preorder indexing TreeReduce uses for
// its memo hooks. Leaves are single-row ungapped alignments, so the leaf
// digest is just the sequence digest.
func alignTreeDigests(tree *skel.Tree[Alignment]) []memo.Key {
	return skel.TreeDigests(tree, func(a Alignment) memo.Key {
		if len(a) != 1 {
			return memo.Leaf("bio.alignment", []byte(a.Consensus()))
		}
		return Seq(a[0]).Digest()
	})
}
