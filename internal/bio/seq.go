// Package bio implements the paper's motivating application: multiple
// alignment of RNA sequences from related organisms. The paper's pipeline
// is (1) build a binary phylogenetic tree in which subtrees are clusters of
// closely related organisms, then (2) reduce that tree with an "align-node"
// function. The authors' node-evaluation code (2000+ lines of Strand and C,
// on proprietary data from Ross Overbeek) was unfinished at publication; we
// substitute synthetic RNA evolved along a mutation tree plus a standard
// progressive-alignment node evaluator (Needleman–Wunsch on profiles),
// which exercises the same code path: non-uniform, unpredictable node
// costs and large intermediate structures.
package bio

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Bases is the RNA alphabet.
const Bases = "ACGU"

// Seq is an RNA sequence over ACGU. It is a byte slice rather than a
// string so the alignment kernels can index, slice, and build sequences
// without per-call string conversions (see
// internal/bio/OPTIMIZATION_PLAN.md phase 3); the content digest of a
// sequence is unchanged by the representation.
type Seq []byte

// String renders the sequence for %s/%v formatting and logs.
func (s Seq) String() string { return string(s) }

// Equal reports whether two sequences have identical content.
func (s Seq) Equal(t Seq) bool { return bytes.Equal(s, t) }

// RandomSeq generates a uniform random RNA sequence of length n.
func RandomSeq(n int, rng *rand.Rand) Seq {
	b := make([]byte, n)
	for i := range b {
		b[i] = Bases[rng.Intn(4)]
	}
	return b
}

// Mutate returns a mutated copy of s: each position substitutes with
// probability subRate; insertions and deletions each occur per position
// with probability indelRate.
func Mutate(s Seq, subRate, indelRate float64, rng *rand.Rand) Seq {
	b := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		if rng.Float64() < indelRate {
			// Deletion: skip this base.
			continue
		}
		if rng.Float64() < indelRate {
			// Insertion before this base.
			b = append(b, Bases[rng.Intn(4)])
		}
		if rng.Float64() < subRate {
			b = append(b, Bases[rng.Intn(4)])
		} else {
			b = append(b, s[i])
		}
	}
	if len(b) == 0 {
		// Never return an empty sequence; keep one base.
		b = append(b, Bases[rng.Intn(4)])
	}
	return b
}

// Family is a set of related sequences evolved from a common ancestor along
// a (hidden) binary tree.
type Family struct {
	// Names labels the observed (leaf) sequences org1..orgN.
	Names []string
	// Seqs are the observed sequences, parallel to Names.
	Seqs []Seq
	// Ancestor is the root sequence everything evolved from (ground truth
	// for alignment-quality experiments).
	Ancestor Seq
}

// Evolve generates a family of n related sequences: an ancestral sequence
// of length seqLen is evolved along a random binary tree, accumulating
// substitutions and indels on every edge. Larger subRate/indelRate make the
// family more diverged (and the alignment problem harder).
func Evolve(n, seqLen int, subRate, indelRate float64, seed int64) (*Family, error) {
	if n < 2 {
		return nil, fmt.Errorf("bio: Evolve needs at least 2 sequences, got %d", n)
	}
	if seqLen < 1 {
		return nil, fmt.Errorf("bio: Evolve needs positive sequence length")
	}
	rng := rand.New(rand.NewSource(seed))
	root := RandomSeq(seqLen, rng)
	var leaves []Seq
	var grow func(s Seq, k int)
	grow = func(s Seq, k int) {
		if k == 1 {
			leaves = append(leaves, s)
			return
		}
		split := 1 + rng.Intn(k-1)
		grow(Mutate(s, subRate, indelRate, rng), split)
		grow(Mutate(s, subRate, indelRate, rng), k-split)
	}
	grow(root, n)
	fam := &Family{Seqs: leaves, Ancestor: root}
	for i := range leaves {
		fam.Names = append(fam.Names, fmt.Sprintf("org%d", i+1))
	}
	return fam, nil
}
