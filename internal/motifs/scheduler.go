package motifs

import (
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/term"
)

// schedulerLibrarySrc is the Scheduler motif library: dynamic allocation of
// tasks to idle processors through a manager/worker structure (the paper's
// scheduler motif, described in its reference [6]). Server 1 is the manager;
// servers 2..N are workers. A worker announces readiness, receives one task,
// performs it with the user-supplied task/2 process, and announces readiness
// again once the task's result is available — so each worker holds at most
// one task at a time and fast workers automatically receive more work.
//
// The computation is started with create(N, jobs(Tasks, Results)): Tasks is
// a list of task descriptions; Results is bound to the list of results in
// task order. When every result is available, halt is broadcast.
const schedulerLibrarySrc = `
% Scheduler motif library (manager/worker).
server([jobs(Tasks, Results)|In]) :-
    pair_jobs(Tasks, Results, Js),
    nodes(N),
    start_workers(N),
    await_results(Results),
    manager(In, Js).
server([start|In]) :-
    self(W), send(1, ready(W)), server(In).
server([work(T, R)|In]) :-
    task(T, R), ready_after(R), server(In).
server([halt|_]).

% Pair each task with a fresh result variable.
pair_jobs([T|Ts], Rs, Js) :-
    Rs := [R|Rs1], Js := [job(T, R)|Js1], pair_jobs(Ts, Rs1, Js1).
pair_jobs([], Rs, Js) :- Rs := [], Js := [].

% Tell servers 2..N to become workers.
start_workers(N) :- N > 1 | send(N, start), N1 is N - 1, start_workers(N1).
start_workers(1).

% The manager hands one job to each ready worker; idle readiness
% announcements after exhaustion are absorbed.
manager([ready(W)|In], [job(T, R)|Js]) :-
    send(W, work(T, R)), manager(In, Js).
manager([ready(_)|In], []) :- manager(In, []).
manager([halt|_], _).

% A worker asks for more work only after its current result is available.
ready_after(R) :- data(R) | self(W), send(1, ready(W)).

% Termination detection: when every result is bound, halt the network.
await_results([R|Rs]) :- data(R) | await_results(Rs).
await_results([]) :- halt.
`

// Scheduler returns the Scheduler motif {identity, scheduler library}.
// The user's application supplies task/2 (task description in, result out).
// Compose with Server to obtain an executable program:
//
//	Sched = Server ∘ Scheduler
func Scheduler() *core.Motif {
	lib := parser.MustParse(term.NewHeap(), schedulerLibrarySrc)
	return core.LibraryOnly("scheduler", lib)
}

// SchedulerMotif returns the composed, executable scheduler:
// Server ∘ Scheduler.
func SchedulerMotif() core.Applier {
	return core.Compose(Server(), Scheduler())
}

// SchedulerGoal builds create(Procs, jobs(Tasks, Results)).
func SchedulerGoal(tasks []term.Term, procs int, results *term.Var) term.Term {
	return term.NewCompound("create",
		term.Int(procs),
		term.NewCompound("jobs", term.MkList(tasks...), results))
}
