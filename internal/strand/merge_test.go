package strand

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/term"
)

func TestMergeBothClosed(t *testing.T) {
	src := `main(Z) :- merge([1,2], [3,4], Z).`
	h := term.NewHeap()
	prog := parser.MustParse(h, src)
	rt := New(prog, h, Options{Procs: 1, Seed: 1})
	z := h.NewVar("Z")
	rt.Spawn(term.NewCompound("main", z), 0)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	elems, ok := term.ListSlice(z)
	if !ok || len(elems) != 4 {
		t.Fatalf("Z = %s", term.Sprint(term.Resolve(z)))
	}
	// All four items present (order is a fair interleaving).
	seen := map[int64]bool{}
	for _, e := range elems {
		seen[int64(term.Walk(e).(term.Int))] = true
	}
	for _, want := range []int64{1, 2, 3, 4} {
		if !seen[want] {
			t.Fatalf("missing %d in %s", want, term.Sprint(term.Resolve(z)))
		}
	}
}

func TestMergeOneEmpty(t *testing.T) {
	src := `main(Z) :- merge([], [7,8], Z).`
	h := term.NewHeap()
	prog := parser.MustParse(h, src)
	rt := New(prog, h, Options{Procs: 1, Seed: 1})
	z := h.NewVar("Z")
	rt.Spawn(term.NewCompound("main", z), 0)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := term.Sprint(term.Resolve(z)); got != "[7,8]" {
		t.Fatalf("Z = %s", got)
	}
}

func TestMergeIncrementalProducers(t *testing.T) {
	// Two producers feed the merger concurrently; the consumer sees all
	// items from both.
	src := `
main(Z) :- gen(1, 3, A), gen(10, 12, B), merge(A, B, Z).
gen(I, N, S) :- I =< N | S := [I|S1], I1 is I + 1, gen(I1, N, S1).
gen(I, N, S) :- I > N | S := [].
`
	h := term.NewHeap()
	prog := parser.MustParse(h, src)
	rt := New(prog, h, Options{Procs: 2, Seed: 1})
	z := h.NewVar("Z")
	rt.Spawn(term.NewCompound("main", z), 0)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	elems, ok := term.ListSlice(z)
	if !ok || len(elems) != 6 {
		t.Fatalf("Z = %s", term.Sprint(term.Resolve(z)))
	}
	sum := int64(0)
	for _, e := range elems {
		sum += int64(term.Walk(e).(term.Int))
	}
	if sum != 1+2+3+10+11+12 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMergeFairness(t *testing.T) {
	// With both streams fully available, merge alternates sources rather
	// than draining one side first.
	src := `main(Z) :- merge([1,1,1], [2,2,2], Z).`
	h := term.NewHeap()
	prog := parser.MustParse(h, src)
	rt := New(prog, h, Options{Procs: 1, Seed: 1})
	z := h.NewVar("Z")
	rt.Spawn(term.NewCompound("main", z), 0)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	elems, _ := term.ListSlice(z)
	// First two items must come from different sources.
	a := int64(term.Walk(elems[0]).(term.Int))
	b := int64(term.Walk(elems[1]).(term.Int))
	if a == b {
		t.Fatalf("unfair merge prefix: %s", term.Sprint(term.Resolve(z)))
	}
}

func TestMergeErrorsOnNonStream(t *testing.T) {
	if _, _, err := tryRunSrc("main(Z) :- merge(42, [1], Z).", "main(Z)", Options{Procs: 1}); err == nil {
		t.Fatal("expected error for non-stream input")
	}
}
