package jobs

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/memo"
	"repro/internal/skel"
)

// Grid engine bounds.
const (
	maxGridDim        = 512
	maxGridIterations = 500_000
	// gridCkptKey is the rolling checkpoint slot: each snapshot supersedes
	// the previous one, so compaction keeps exactly one live grid.
	gridCkptKey = "sweep"
)

// GridSpec describes a boundary-driven Jacobi stencil relaxation: a
// Dirichlet problem with fixed hot/cold boundary rows (or a uniformly hot
// frame) relaxed to tolerance or an iteration bound.
type GridSpec struct {
	// Rows, Cols size the grid including boundary (defaults 48×48, min 3,
	// max 512 each). Non-square grids are fine.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Iterations bounds the sweeps (default 2000).
	Iterations int `json:"iterations,omitempty"`
	// Tolerance, when > 0, stops once the max cell update falls below it.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Hot and Cold are the driven boundary values (defaults 100 and 0).
	Hot  float64 `json:"hot,omitempty"`
	Cold float64 `json:"cold,omitempty"`
	// Boundary selects the drive: "topbottom" (default — hot top row, cold
	// bottom row) or "edges" (all four edges hot).
	Boundary string `json:"boundary,omitempty"`
	// CheckpointEvery journals the working grid every this many sweeps
	// (0 = no checkpoints). Timing-only: it never changes the result,
	// because each sweep is a deterministic function of the previous grid.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Validate normalizes the spec in place and rejects malformed fields.
func (s *GridSpec) Validate() error {
	if s.Rows == 0 {
		s.Rows = 48
	}
	if s.Cols == 0 {
		s.Cols = 48
	}
	if s.Rows < 3 || s.Rows > maxGridDim || s.Cols < 3 || s.Cols > maxGridDim {
		return fmt.Errorf("grid dimensions out of range: %dx%d (3..%d)", s.Rows, s.Cols, maxGridDim)
	}
	if s.Iterations == 0 {
		s.Iterations = 2000
	}
	if s.Iterations < 1 || s.Iterations > maxGridIterations {
		return fmt.Errorf("grid iterations out of range: %d", s.Iterations)
	}
	if s.Tolerance < 0 || math.IsNaN(s.Tolerance) || math.IsInf(s.Tolerance, 0) {
		return fmt.Errorf("grid tolerance out of range: %v", s.Tolerance)
	}
	if math.IsNaN(s.Hot) || math.IsInf(s.Hot, 0) || math.IsNaN(s.Cold) || math.IsInf(s.Cold, 0) {
		return fmt.Errorf("grid boundary values must be finite")
	}
	if s.Hot == 0 && s.Cold == 0 {
		s.Hot = 100
	}
	switch s.Boundary {
	case "":
		s.Boundary = "topbottom"
	case "topbottom", "edges":
	default:
		return fmt.Errorf("unknown grid boundary %q (want topbottom or edges)", s.Boundary)
	}
	if s.CheckpointEvery < 0 || s.CheckpointEvery > maxGridIterations {
		return fmt.Errorf("grid checkpoint_every out of range: %d", s.CheckpointEvery)
	}
	return nil
}

// GridResult is the outcome of a grid job.
type GridResult struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Sweeps is the total sweep count the final grid represents (including
	// sweeps restored from a checkpoint); Delta the final max update.
	Sweeps int     `json:"sweeps"`
	Delta  float64 `json:"delta"`
	// Converged is set when Tolerance stopped the iteration.
	Converged bool `json:"converged"`
	// Center samples the relaxed field at the grid midpoint.
	Center float64 `json:"center"`
	// Checksum digests the full final grid — the determinism witness: equal
	// specs produce equal checksums for any worker count, crash/resume
	// history, or cluster placement.
	Checksum string `json:"checksum"`
	// ResumedSweeps counts sweeps skipped by resuming from a journaled
	// snapshot; a cold run reports 0.
	ResumedSweeps int `json:"resumed_sweeps,omitempty"`
	// Units is the number of interior cell updates this run computed.
	Units int64 `json:"units"`
}

// gridSnapshot is the journaled checkpoint payload.
type gridSnapshot struct {
	Sweep int     `json:"sweep"`
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	Delta float64 `json:"delta"`
	// Data is the row-major grid, little-endian float64s, base64-encoded.
	Data string `json:"data"`
}

func encodeGridData(g *skel.Grid) string {
	return base64.StdEncoding.EncodeToString(gridBytes(g))
}

func decodeGridData(s string, rows, cols int) (*skel.Grid, bool) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(buf) != 8*rows*cols {
		return nil, false
	}
	g := skel.NewGrid(rows, cols)
	for i := range g.Data {
		g.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return g, true
}

// buildGrid materializes the boundary-driven initial grid.
func (s *GridSpec) buildGrid() *skel.Grid {
	g := skel.NewGrid(s.Rows, s.Cols)
	switch s.Boundary {
	case "edges":
		for c := 0; c < s.Cols; c++ {
			g.Set(0, c, s.Hot)
			g.Set(s.Rows-1, c, s.Hot)
		}
		for r := 0; r < s.Rows; r++ {
			g.Set(r, 0, s.Hot)
			g.Set(r, s.Cols-1, s.Hot)
		}
	default: // topbottom
		for c := 0; c < s.Cols; c++ {
			g.Set(0, c, s.Hot)
			g.Set(s.Rows-1, c, s.Cold)
		}
	}
	return g
}

// RunGrid executes the stencil workload, journaling rolling snapshots when
// the spec asks for them and resuming from the deepest journaled sweep.
func RunGrid(ctx context.Context, spec *GridSpec, env *Env) (*GridResult, error) {
	g := spec.buildGrid()
	resumed := 0
	opts := skel.JacobiOptions{
		Workers:    env.workers(),
		Iterations: spec.Iterations,
		Tolerance:  spec.Tolerance,
	}
	if spec.CheckpointEvery > 0 && env != nil && env.Checkpoint != nil {
		opts.CheckpointEvery = spec.CheckpointEvery
		opts.Checkpoint = func(sweep int, snap *skel.Grid, delta float64) {
			blob, err := json.Marshal(gridSnapshot{
				Sweep: sweep, Rows: snap.Rows, Cols: snap.Cols,
				Delta: delta, Data: encodeGridData(snap),
			})
			if err == nil {
				env.Checkpoint(gridCkptKey, blob)
			}
		}
	}
	if env != nil && env.Resume != nil {
		opts.Resume = func() (*skel.Grid, int, bool) {
			blob, ok := env.Resume(gridCkptKey)
			if !ok {
				return nil, 0, false
			}
			var snap gridSnapshot
			if err := json.Unmarshal(blob, &snap); err != nil {
				return nil, 0, false
			}
			rg, ok := decodeGridData(snap.Data, snap.Rows, snap.Cols)
			if !ok || snap.Rows != spec.Rows || snap.Cols != spec.Cols {
				return nil, 0, false
			}
			resumed = snap.Sweep
			return rg, snap.Sweep, true
		}
	}
	out, sweeps, delta, err := skel.Jacobi(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	key := memo.Leaf("jobs.grid", gridBytes(out))
	return &GridResult{
		Rows:          spec.Rows,
		Cols:          spec.Cols,
		Sweeps:        sweeps,
		Delta:         delta,
		Converged:     spec.Tolerance > 0 && delta < spec.Tolerance,
		Center:        out.At(spec.Rows/2, spec.Cols/2),
		Checksum:      hex.EncodeToString(key[:8]),
		ResumedSweeps: resumed,
		Units:         int64(sweeps-resumed) * int64(spec.Rows-2) * int64(spec.Cols-2),
	}, nil
}

func gridBytes(g *skel.Grid) []byte {
	buf := make([]byte, 8*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// DigestFields returns the canonical digest input for grid jobs: everything
// that determines the relaxed field. CheckpointEvery is excluded — sweeps
// are deterministic functions of the previous grid, so snapshot cadence
// (and crash/resume history) never changes the result.
func (s *GridSpec) DigestFields() [][]byte {
	var nums [48]byte
	binary.BigEndian.PutUint64(nums[0:], uint64(int64(s.Rows)))
	binary.BigEndian.PutUint64(nums[8:], uint64(int64(s.Cols)))
	binary.BigEndian.PutUint64(nums[16:], uint64(int64(s.Iterations)))
	binary.BigEndian.PutUint64(nums[24:], math.Float64bits(s.Tolerance))
	binary.BigEndian.PutUint64(nums[32:], math.Float64bits(s.Hot))
	binary.BigEndian.PutUint64(nums[40:], math.Float64bits(s.Cold))
	return [][]byte{nums[:], []byte(s.Boundary)}
}
