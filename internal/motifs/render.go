package motifs

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// Render returns an ASCII drawing of the reduction tree, one node per line
// with box-drawing connectors — used by examples and debugging output.
func (t *BinTree) Render() string {
	var b strings.Builder
	var walk func(n *BinTree, prefix string, last bool, root bool)
	walk = func(n *BinTree, prefix string, last bool, root bool) {
		connector, childPrefix := "", ""
		if !root {
			if last {
				connector = "└─ "
				childPrefix = prefix + "   "
			} else {
				connector = "├─ "
				childPrefix = prefix + "│  "
			}
		} else {
			childPrefix = prefix
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s%sleaf %s\n", prefix, connector, term.Sprint(n.Leaf))
			return
		}
		fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, n.Op)
		walk(n.L, childPrefix, false, false)
		walk(n.R, childPrefix, true, false)
	}
	walk(t, "", true, true)
	return b.String()
}

// Render returns an ASCII drawing of the labeled tree: each node's
// identifier, payload, and processor label — the visual form of the
// Tree-Reduce-2 preprocessing result.
func (l *Labeling) Render() string {
	elems, _ := term.IsTuple(l.Tuple)
	children := map[int][]int{}
	root := -1
	for id := 1; id <= l.N; id++ {
		p := l.Parent[id]
		if p < 0 {
			root = id
		} else {
			children[p] = append(children[p], id)
		}
	}
	var b strings.Builder
	var walk func(id int, prefix string, last, isRoot bool)
	walk = func(id int, prefix string, last, isRoot bool) {
		connector, childPrefix := "", prefix
		if !isRoot {
			if last {
				connector = "└─ "
				childPrefix = prefix + "   "
			} else {
				connector = "├─ "
				childPrefix = prefix + "│  "
			}
		}
		data := "?"
		if id-1 < len(elems) {
			if c, ok := term.Walk(elems[id-1]).(*term.Compound); ok && len(c.Args) > 0 {
				data = term.Sprint(c.Args[0])
			}
		}
		fmt.Fprintf(&b, "%s%s#%d %s @p%d\n", prefix, connector, id, data, l.Label[id])
		kids := children[id]
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1, false)
		}
	}
	if root > 0 {
		walk(root, "", true, true)
	}
	return b.String()
}
