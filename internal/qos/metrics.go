package qos

import "sort"

// TenantSnapshot is one tenant's row in the `qos` block of /metrics.
type TenantSnapshot struct {
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	Depth  int    `json:"depth"`

	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Preempted int64 `json:"preempted,omitempty"`
	Done      int64 `json:"done"`

	// Wait percentiles are queue time (admission → dispatch), not service.
	P50WaitMS float64 `json:"p50_wait_ms"`
	P99WaitMS float64 `json:"p99_wait_ms"`
}

// Snapshot is the `qos` block of /metrics.
type Snapshot struct {
	// Fair reports the scheduling mode; false is the flat-FIFO baseline.
	Fair        bool `json:"fair"`
	Capacity    int  `json:"capacity"`
	TenantDepth int  `json:"tenant_depth,omitempty"`
	Depth       int  `json:"depth"`
	// Tenants counts every tenant ever seen; PerTenant is capped to the
	// busiest snapshotTenantCap by admitted count.
	Tenants int `json:"tenants"`

	Admitted   int64 `json:"admitted"`
	Shed       int64 `json:"shed"`
	Preempted  int64 `json:"preempted"`
	Dispatched int64 `json:"dispatched"`
	Done       int64 `json:"done"`

	// ServiceEWMAMS is the drain-rate estimate behind Retry-After.
	ServiceEWMAMS float64 `json:"service_ewma_ms"`

	PerTenant []TenantSnapshot `json:"per_tenant,omitempty"`
}

// snapshotTenantCap bounds the per-tenant rows in one snapshot: a harness
// simulating thousands of tenants should not turn /metrics into a dump.
const snapshotTenantCap = 32

// Snapshot renders the scheduler's accounting. Rows are the busiest
// tenants by admitted count, ties broken by name for stable output.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Fair:          s.opt.Fair,
		Capacity:      s.opt.Capacity,
		Depth:         s.depth,
		Tenants:       len(s.tenants),
		Admitted:      s.admitted,
		Shed:          s.shed,
		Preempted:     s.preempted,
		Dispatched:    s.dispatched,
		Done:          s.done,
		ServiceEWMAMS: s.ewmaServiceUS / 1000,
	}
	if s.opt.Fair {
		snap.TenantDepth = s.opt.TenantDepth
	}
	rows := make([]TenantSnapshot, 0, len(s.tenants))
	for _, t := range s.tenants {
		rows = append(rows, TenantSnapshot{
			Tenant:    t.name,
			Weight:    t.weight,
			Depth:     t.depth,
			Admitted:  t.admitted,
			Shed:      t.shed,
			Preempted: t.preempted,
			Done:      t.done,
			P50WaitMS: t.wait.Quantile(0.50) / 1000,
			P99WaitMS: t.wait.Quantile(0.99) / 1000,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Admitted != rows[j].Admitted {
			return rows[i].Admitted > rows[j].Admitted
		}
		return rows[i].Tenant < rows[j].Tenant
	})
	if len(rows) > snapshotTenantCap {
		rows = rows[:snapshotTenantCap]
	}
	snap.PerTenant = rows
	return snap
}

// TenantDepths returns every tenant's current queue depth, for heartbeat
// load reports; tenants with empty queues are omitted.
func (s *Scheduler) TenantDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for name, t := range s.tenants {
		if t.depth > 0 {
			out[name] = t.depth
		}
	}
	return out
}
