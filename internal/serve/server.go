package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memo"
	"repro/internal/memoshare"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/qos"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config sizes the serving layer. Zero values select the defaults noted on
// each field.
type Config struct {
	// Workers is the pool size (default 4).
	Workers int
	// InnerWorkers is the parallelism of one job's reduction (default 4).
	InnerWorkers int
	// QueueCap bounds the admission queue (default 64); beyond it requests
	// are shed with 429.
	QueueCap int
	// BatchMax caps how many small alignment jobs one farm dispatch
	// coalesces (default 8).
	BatchMax int
	// BatchCostMax is the AlignJob.Cost threshold for batching (default
	// ~12 sequences of length 100).
	BatchCostMax int64
	// DefaultTimeout applies when a request carries no deadline_ms
	// (default 30s); MaxTimeout caps requested deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobs bounds the finished-job history kept for polling (default
	// 1024; oldest evicted first).
	MaxJobs int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Seed drives the skeleton mappers.
	Seed int64
	// TraceCap sizes the trace ring (default trace.DefaultRingCapacity).
	TraceCap int
	// Store, when non-nil, journals the job lifecycle to a write-ahead
	// log: accepted jobs survive a crash (incomplete ones are re-run on
	// the next New with the same store), tree reductions checkpoint
	// completed subtrees and resume from them, and the JobRequest.ID
	// dedup table is rebuilt from the log.
	Store *store.JobStore
	// MemoBytes, when positive, enables the content-addressed memo layer
	// (internal/memo) with that total byte budget: finished results are
	// cached under the job's content digest and answer identical
	// resubmissions without queueing, and align/tree reductions memoize
	// subtree values so warm runs skip already-computed subtrees even
	// across different jobs. Zero disables memoization.
	MemoBytes int64
	// FairQoS enables tenant-aware admission (internal/qos): per-tenant
	// bounded queues drained by weighted deficit round robin, priority
	// classes with preemption of queued lower-class work, and per-tenant
	// drain-derived Retry-After on sheds. False keeps the original flat
	// FIFO (tenant identity is still accounted, just not scheduled on).
	FairQoS bool
	// TenantDepth bounds one tenant's queue under FairQoS (default
	// max(8, QueueCap/8)).
	TenantDepth int
	// TenantWeights maps tenant → scheduling weight under FairQoS; absent
	// tenants weigh 1.
	TenantWeights map[string]int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.InnerWorkers <= 0 {
		c.InnerWorkers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.BatchCostMax <= 0 {
		c.BatchCostMax = batchCostDefault
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// Server is the serving layer: an admission queue, a worker pool, a job
// store for polling, and the observability endpoints. Create with New,
// serve via Handler, stop with Shutdown.
type Server struct {
	cfg  Config
	q    *queue
	met  *poolMetrics
	ring *trace.Ring
	memo *memo.Cache       // nil when Config.MemoBytes == 0
	pipe *pipeline.Metrics // per-stage pipeline metrics, aggregated across jobs

	// provider answers peer workers' GET /v1/memo/{digest} reads from the
	// local cache; fetcher (set by the cluster wiring via SetPeerFetcher)
	// resolves local misses from peers before computing.
	provider *memoshare.Provider
	fetcher  atomic.Pointer[memoshare.Fetcher]

	workerWG sync.WaitGroup
	draining atomic.Bool

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for history eviction
	byClient map[string]string
	// byContent indexes live (queued/running) jobs by content digest, so a
	// concurrent identical submission attaches to the in-flight execution
	// instead of starting its own — the singleflight collapse. Entries are
	// removed when their job finishes; finished results are answered from
	// the memo cache instead.
	byContent map[memo.Key]string
	nextID    int64
}

// New builds the server and starts its worker pool. With a configured
// store it first replays the log: terminal jobs become pollable history
// (and answer duplicate submissions), incomplete jobs are re-enqueued
// under their original IDs.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:       cfg,
		met:       newPoolMetrics(cfg.Workers),
		ring:      trace.NewRing(cfg.TraceCap),
		memo:      memo.New(cfg.MemoBytes),
		pipe:      pipeline.NewMetrics(),
		jobs:      make(map[string]*Job),
		byClient:  make(map[string]string),
		byContent: make(map[memo.Key]string),
	}
	s.memo.SetTracer(s.ring)
	s.provider = memoshare.NewProvider(s.memo)
	var resume []*Job
	if cfg.Store != nil {
		cfg.Store.SetTracer(s.ring)
		resume = s.recoverFromStore()
	}
	s.q = newQueue(qos.Options{
		Capacity:    cfg.QueueCap,
		TenantDepth: cfg.TenantDepth,
		Weights:     cfg.TenantWeights,
		Fair:        cfg.FairQoS,
		Workers:     cfg.Workers,
		Tracer:      s.ring,
		NowMicros:   s.met.sinceMicros,
	})
	// Recovered jobs ride above the admission bounds, so a restart can
	// never shed its own backlog.
	for _, j := range resume {
		s.q.pushResumed(j)
	}
	s.workerWG.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s
}

// Shutdown drains gracefully: admission stops (new submissions get 503),
// queued and in-flight jobs run to completion, workers exit. It returns
// ctx.Err() if the drain outlives ctx; the pool keeps draining in the
// background in that case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit validates, deadline-wraps, and enqueues a request, returning the
// job. It is the transport-independent core of POST /v1/jobs.
//
// With the memo layer enabled, a submission whose content digest matches a
// live job attaches to it (singleflight collapse), and one matching a
// cached finished result is answered as an immediately-done job without
// queueing. Independently of memoization, a duplicate JobRequest.ID always
// returns the original job even while it is still queued or running: the
// job is published in the history inside the same critical section that
// claims the idempotency key, so no duplicate can race past the dedup
// check into a second execution.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if err := req.validate(); err != nil {
		s.met.rejected.Add(1)
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	var key memo.Key
	haveKey := false
	if s.memo != nil {
		key, haveKey = ContentKey(&req)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeoutFor(req))
	j := &Job{
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		submitted: time.Now(),
		state:     StateQueued,
		worker:    -1,
		key:       key,
		hasKey:    haveKey,
	}
	if req.Type == JobPipeline {
		// The stream must exist before the job is published: a client may
		// open GET /v1/jobs/{id}/stream the moment the 202 lands.
		j.stream = newRecordStream()
	}

	// Allocate the ID, claim the idempotency key, and publish the job in
	// one critical section, so concurrent duplicates agree on a single job.
	s.mu.Lock()
	if req.ID != "" {
		if id, ok := s.byClient[req.ID]; ok {
			if prev := s.jobs[id]; prev != nil {
				s.mu.Unlock()
				cancel()
				s.met.deduped.Add(1)
				return prev, nil
			}
		}
	}
	if haveKey {
		// Singleflight collapse: an identical job is already in flight;
		// attach to its execution instead of queueing another.
		if id, ok := s.byContent[key]; ok {
			if prev := s.jobs[id]; prev != nil {
				if req.ID != "" {
					s.byClient[req.ID] = id
				}
				s.mu.Unlock()
				cancel()
				s.met.collapsed.Add(1)
				s.emit(trace.Event{Cycle: s.met.sinceMicros(), Kind: trace.KindMemoCollapse,
					Proc: -1, From: -1, Label: key.Short()})
				return prev, nil
			}
			delete(s.byContent, key) // stale: the job was evicted from history
		}
		// Job-level cache: a finished identical job left its result here;
		// answer without queueing.
		if v, ok := s.memo.Get(key); ok {
			if blob, okType := v.(memo.Bytes); okType && applyCached(j, []byte(blob)) {
				s.nextID++
				j.id = fmt.Sprintf("j%06d", s.nextID)
				if req.ID != "" {
					s.byClient[req.ID] = j.id
				}
				j.state = StateDone
				j.finished = time.Now()
				s.storeLocked(j)
				s.mu.Unlock()
				cancel()
				s.met.admitted.Add(1)
				s.met.memoHits.Add(1)
				s.met.done.Add(1)
				s.met.observeLatency(time.Since(j.submitted))
				s.journalCached(j)
				return j, nil
			}
		}
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	if req.ID != "" {
		s.byClient[req.ID] = j.id
	}
	if haveKey {
		s.byContent[key] = j.id
	}
	s.storeLocked(j)
	s.mu.Unlock()

	victim, err := s.q.tryPush(j)
	if err != nil {
		cancel()
		s.unpublish(j)
		if errors.Is(err, ErrQueueFull) {
			s.met.shed.Add(1)
		}
		return nil, err
	}
	if victim != nil {
		// The scheduler evicted a queued lower-class job to admit this one;
		// fail it back to its client as retriable.
		s.preemptJob(victim)
	}
	s.met.admitted.Add(1)
	// Journal after the job is admitted and before the caller is told, so
	// an accepted response always refers to a durable job.
	if s.cfg.Store != nil {
		if body, err := json.Marshal(req); err == nil {
			_ = s.cfg.Store.Accepted(j.id, req.ID, body)
		}
	}
	s.emit(trace.Event{Cycle: s.met.sinceMicros(), Kind: trace.KindEnqueue,
		Proc: -1, From: -1, Arg: int64(s.q.depth()), Label: string(req.Type) + ":" + j.id})
	return j, nil
}

// preemptJob finishes a queued job the QoS layer evicted for a
// higher-class arrival: terminal state "preempted", retriable by contract
// (the work never started). Its idempotency and singleflight claims are
// released so a resubmission runs fresh instead of finding the corpse.
func (s *Server) preemptJob(j *Job) {
	j.mu.Lock()
	j.state = StatePreempted
	j.err = qos.ErrPreempted
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel()
	s.met.preempted.Add(1)
	s.mu.Lock()
	if cid := j.req.ID; cid != "" && s.byClient[cid] == j.id {
		delete(s.byClient, cid)
	}
	if j.hasKey && s.byContent[j.key] == j.id {
		delete(s.byContent, j.key)
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		_ = s.cfg.Store.Failed(j.id, qos.ErrPreempted.Error())
	}
	if j.stream != nil {
		j.stream.close()
	}
}

// unpublish rolls a job back out of the history after a failed enqueue.
func (s *Server) unpublish(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cid := j.req.ID; cid != "" && s.byClient[cid] == j.id {
		delete(s.byClient, cid)
	}
	if j.hasKey && s.byContent[j.key] == j.id {
		delete(s.byContent, j.key)
	}
	delete(s.jobs, j.id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// journalCached journals a cache-answered job so it stays pollable across
// a restart, like any other accepted-and-finished job.
func (s *Server) journalCached(j *Job) {
	if s.cfg.Store == nil {
		return
	}
	if body, err := json.Marshal(j.req); err == nil {
		_ = s.cfg.Store.Accepted(j.id, j.req.ID, body)
	}
	if data, err := json.Marshal(j.Status()); err == nil {
		_ = s.cfg.Store.Done(j.id, data)
	}
}

// timeoutFor resolves a request's execution budget.
func (s *Server) timeoutFor(req JobRequest) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if req.DeadlineMillis > 0 {
		timeout = time.Duration(req.DeadlineMillis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return timeout
}

// Job returns the job with the given id, if still in the history window.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// TenantQueueDepths reports each tenant's current admission-queue depth
// (non-empty queues only) — the per-tenant load block of cluster
// heartbeats.
func (s *Server) TenantQueueDepths() map[string]int {
	return s.q.sched.TenantDepths()
}

// Metrics snapshots the serving metrics.
func (s *Server) Metrics() MetricsSnapshot {
	var memoSnap *memo.StatsSnapshot
	if s.memo != nil {
		snap := s.memo.Stats()
		memoSnap = &snap
	}
	var pipeSnap *pipeline.MetricsSnapshot
	if ps := s.pipe.Snapshot(); ps != nil && (ps.Jobs > 0 || len(ps.Stages) > 0) {
		pipeSnap = ps
	}
	qosSnap := s.q.sched.Snapshot()
	m := s.met.snapshot(s.q.depth(), s.q.capacity(), s.ring.Total(), s.cfg.Store.Metrics(), memoSnap, pipeSnap, &qosSnap)
	if s.memo != nil {
		var ms memoshare.Stats
		s.provider.AddTo(&ms)
		s.fetcher.Load().AddTo(&ms)
		m.Memoshare = &ms
	}
	return m
}

// SetPeerFetcher installs (or clears) the memoshare fetcher that resolves
// local memo misses from peer workers at execution time. The cluster
// wiring calls it once the coordinator address is known; safe to call
// concurrently with running jobs.
func (s *Server) SetPeerFetcher(f *memoshare.Fetcher) {
	if f == nil {
		s.fetcher.Store(nil)
		return
	}
	s.fetcher.Store(f)
}

// PeerFetcher returns the installed memoshare fetcher, nil when peer fetch
// is disabled.
func (s *Server) PeerFetcher() *memoshare.Fetcher { return s.fetcher.Load() }

// MemoCache exposes the content-addressed cache (nil when memoization is
// disabled); bench drivers and tests inspect its counters directly.
func (s *Server) MemoCache() *memo.Cache { return s.memo }

// Tracer exposes the server's trace ring so sidecar components (the
// memoshare fetcher) can emit into the same timeline.
func (s *Server) Tracer() trace.Tracer { return s.ring }

func (s *Server) store(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeLocked(j)
}

// storeLocked publishes the job in the history and evicts the oldest
// finished jobs beyond the window. Callers hold s.mu.
func (s *Server) storeLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.cfg.MaxJobs {
		// Evict the oldest finished job; stop at the first live one (live
		// jobs are bounded by QueueCap + Workers*BatchMax).
		old := s.jobs[s.order[0]]
		if old != nil {
			old.mu.Lock()
			live := old.state == StateQueued || old.state == StateRunning
			old.mu.Unlock()
			if live {
				break
			}
			if cid := old.req.ID; cid != "" && s.byClient[cid] == old.id {
				delete(s.byClient, cid)
			}
			if old.hasKey && s.byContent[old.key] == old.id {
				delete(s.byContent, old.key)
			}
			delete(s.jobs, s.order[0])
		}
		s.order = s.order[1:]
	}
}

// errBadRequest marks validation failures for the HTTP layer.
var errBadRequest = errors.New("bad request")

// Handler returns the HTTP API:
//
//	POST /v1/jobs               submit a job; 202 with the job id, 429 when shed
//	GET  /v1/jobs/{id}          poll a job
//	GET  /v1/jobs/{id}/stream   a pipeline job's records as NDJSON, streamed
//	                            as stages produce them
//	GET  /v1/jobs               list recent jobs (newest first)
//	GET  /metrics               serving metrics (JSON; ?format=text for humans)
//	GET  /debug/trace           the structured event stream (?format=chrome
//	                            for a Chrome trace_event file)
//	GET  /healthz               liveness + drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/memo/{digest}", s.handleMemoGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server draining"})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.rejected.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	// Headers carry QoS identity for clients that can't touch the body
	// (gateways stamping tenant on behalf of callers); the body wins.
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Motif-Tenant")
	}
	if req.Class == "" {
		req.Class = r.Header.Get("X-Motif-Class")
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.Status())
	case errors.Is(err, errBadRequest):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrQueueFull):
		// Load shedding: tell the client when its tenant's queue is
		// expected to have drained instead of buffering without bound.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server draining"})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	const maxList = 100
	if len(ids) > maxList {
		ids = ids[:maxList]
	}
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			st := j.Status()
			// The list view is a summary; drop result payloads.
			st.Align, st.Tree, st.Strand, st.Pipeline = nil, nil, nil, nil
			st.Search, st.Grid, st.Sort = nil, nil, nil
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleMemoGet is the peer memo tier's read-only surface: serve one local
// cache entry by digest, payload checksum in the X-Memo-Sum header. Peers
// read through it on their local misses; it never computes and never
// distorts this worker's own hit/miss accounting.
func (s *Server) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	s.provider.Serve(w, r, r.PathValue("digest"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	if r.URL.Query().Get("format") != "text" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "motifd up %.0fms  workers=%d  queue %d/%d  admitted=%d shed=%d preempted=%d done=%d failed=%d inflight=%d\n",
		snap.UptimeMS, snap.Workers, snap.QueueDepth, snap.QueueCapacity,
		snap.Admitted, snap.Shed, snap.Preempted, snap.Done, snap.Failed, snap.Inflight)
	fmt.Fprintf(w, "latency ms: p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f (n=%d)\n",
		snap.Latency.P50MS, snap.Latency.P95MS, snap.Latency.P99MS,
		snap.Latency.MeanMS, snap.Latency.MaxMS, snap.Latency.Count)
	fmt.Fprintf(w, "batching: %d dispatches, %d jobs batched, max batch %d\n",
		snap.Batch.Dispatches, snap.Batch.BatchedJobs, snap.Batch.MaxBatch)
	if snap.Memo != nil {
		fmt.Fprintf(w, "memo: hit-rate %.3f (%d hits / %d misses), %d/%d bytes in %d entries, %d evictions, %d collapsed, %d job hits\n",
			snap.Memo.HitRate, snap.Memo.Hits, snap.Memo.Misses,
			snap.Memo.Bytes, snap.Memo.MaxBytes, snap.Memo.Entries,
			snap.Memo.Evictions, snap.Collapsed, snap.MemoJobHits)
	}
	if ms := snap.Memoshare; ms != nil && (ms.Lookups > 0 || ms.Served > 0 || ms.ServeMisses > 0) {
		fmt.Fprintf(w, "memoshare: %d peer hits / %d lookups (%d misses, %d failures, %d rejects, %d collapsed), fetched %d bytes; served %d entries (%d bytes) to peers\n",
			ms.PeerHits, ms.Lookups, ms.PeerMisses, ms.FetchFailures,
			ms.VerifyRejects, ms.Collapses, ms.BytesFetched, ms.Served, ms.BytesServed)
	}
	if q := snap.QoS; q != nil {
		mode := "fifo"
		if q.Fair {
			mode = fmt.Sprintf("fair (tenant depth %d)", q.TenantDepth)
		}
		fmt.Fprintf(w, "qos %s: %d tenants, admitted=%d shed=%d preempted=%d service-ewma=%.2fms\n",
			mode, q.Tenants, q.Admitted, q.Shed, q.Preempted, q.ServiceEWMAMS)
		for _, ts := range q.PerTenant {
			fmt.Fprintf(w, "  tenant %-16s w=%d depth=%d admitted=%d shed=%d preempted=%d done=%d wait p50=%.2fms p99=%.2fms\n",
				ts.Tenant, ts.Weight, ts.Depth, ts.Admitted, ts.Shed, ts.Preempted, ts.Done, ts.P50WaitMS, ts.P99WaitMS)
		}
	}
	if mo := snap.Motif; mo != nil {
		fmt.Fprintf(w, "motif jobs: search done=%d terminated=%d resumed-decisions=%d; grid done=%d converged=%d resumed-sweeps=%d; sort done=%d resumed-paths=%d\n",
			mo.Search.Done, mo.Search.Terminated, mo.Search.ResumedDecisions,
			mo.Grid.Done, mo.Grid.Converged, mo.Grid.ResumedSweeps,
			mo.Sort.Done, mo.Sort.ResumedPaths)
	}
	if snap.Pipeline != nil {
		fmt.Fprintf(w, "pipeline: %d jobs, %d records streamed, %d stages resumed\n",
			snap.Pipeline.Jobs, snap.Pipeline.Records, snap.Pipeline.ResumedStages)
		for _, ss := range snap.Pipeline.Stages {
			fmt.Fprintf(w, "  stage %-8s in=%d out=%d dropped=%d queue=%d busy=%.1fms p95=%.2fms %.0f rec/s\n",
				ss.Name, ss.In, ss.Out, ss.Dropped, ss.QueueDepth, ss.BusyMS, ss.P95MS, ss.ThroughputRPS)
		}
	}
	fmt.Fprintln(w)
	tab := metrics.NewTable("worker", "jobs", "busy ms", "utilization", "state")
	for _, ws := range snap.PerWorker {
		state := "idle"
		if ws.Busy {
			state = "busy"
		}
		tab.AddRow(ws.Worker, ws.Jobs, ws.BusyMS, ws.Utilization, state)
	}
	fmt.Fprint(w, tab.String())
	makespan := s.met.sinceMicros()
	fmt.Fprintf(w, "\nbusy/idle timeline (%.0fms):\n%s", float64(makespan)/1000,
		metrics.BusyTimeline(s.ring.Events(), snap.Workers, makespan, 72))
}

// traceEventJSON is the wire form of one event on /debug/trace.
type traceEventJSON struct {
	TMicros int64  `json:"t_us"`
	Kind    string `json:"kind"`
	Proc    int    `json:"proc"`
	From    int    `json:"from,omitempty"`
	Arg     int64  `json:"arg,omitempty"`
	Label   string `json:"label,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	events := s.ring.Events()
	if r.URL.Query().Get("format") == "chrome" {
		// Replay the ring into the Chrome exporter so the stream opens
		// directly in chrome://tracing / Perfetto.
		chrome := trace.NewChrome()
		for _, e := range events {
			chrome.Event(e)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="motifd-trace.json"`)
		if _, err := chrome.WriteTo(w); err != nil {
			// Too late for a status change; the connection is gone.
			return
		}
		return
	}
	out := make([]traceEventJSON, len(events))
	for i, e := range events {
		out[i] = traceEventJSON{
			TMicros: e.Cycle, Kind: e.Kind.String(), Proc: e.Proc,
			From: e.From, Arg: e.Arg, Label: e.Label,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.ring.Total(),
		"dropped": s.ring.Dropped(),
		"events":  out,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": state})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
