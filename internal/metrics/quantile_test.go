package metrics

import "testing"

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds...)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	h.Observe(42)
	// One observation in the (10,100] bucket: every quantile interpolates
	// inside it, never outside.
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 10 || got > 100 {
			t.Errorf("Quantile(%v) = %v, outside the observation's bucket (10,100]", q, got)
		}
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []int64{100, 200, 300} {
		h.Observe(v)
	}
	// Every observation is past the last bound: quantiles fall back to the
	// max observation.
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 300 {
			t.Errorf("Quantile(%v) = %v, want max 300", q, got)
		}
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for v := int64(1); v <= 30; v++ {
		h.Observe(v)
	}
	lo, hi := h.Quantile(-0.5), h.Quantile(1.5)
	if lo != h.Quantile(0) {
		t.Errorf("Quantile(-0.5) = %v, want the q=0 clamp %v", lo, h.Quantile(0))
	}
	if hi != h.Quantile(1) {
		t.Errorf("Quantile(1.5) = %v, want the q=1 clamp %v", hi, h.Quantile(1))
	}
	if hi > 30 || lo < 0 {
		t.Errorf("clamped quantiles out of range: q0=%v q1=%v", lo, hi)
	}
	// Monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
}
