#!/bin/sh
# Smoke test for the motifd daemon, run by CI and `make motifd-smoke`:
# start the daemon, wait for /healthz, submit an alignment job, poll it to
# completion asserting HTTP 200 + valid JSON at each step, check /metrics,
# then drain with SIGTERM and require a clean exit.
set -eu

ADDR=127.0.0.1:18077
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/motifd" ./cmd/motifd
"$TMP/motifd" -addr "$ADDR" -procs 2 -queue 16 2>"$TMP/motifd.log" &
PID=$!

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "motifd did not come up; log:" >&2
        cat "$TMP/motifd.log" >&2
        exit 1
    fi
    sleep 0.1
done

json_field() { # json_field FILE FIELD -> value (and asserts valid JSON)
    python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}

# Submit: must be 202 with a JSON body carrying the job id.
CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$BASE/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"type":"align","align":{"n":6,"len":40,"seed":3}}')"
[ "$CODE" = 202 ] || { echo "submit returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
ID="$(json_field "$TMP/submit.json" id)"
echo "submitted job $ID"

# Poll: must reach state "done" with a 200 and valid JSON.
i=0
while :; do
    CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "$BASE/v1/jobs/$ID")"
    [ "$CODE" = 200 ] || { echo "poll returned $CODE" >&2; exit 1; }
    STATE="$(json_field "$TMP/job.json" state)"
    case "$STATE" in
    done) break ;;
    error) echo "job failed:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
    esac
    i=$((i + 1))
    [ "$i" -lt 200 ] || { echo "job stuck in $STATE" >&2; exit 1; }
    sleep 0.05
done
echo "job $ID done"

# Metrics must serve valid JSON with the run accounted for.
CODE="$(curl -s -o "$TMP/metrics.json" -w '%{http_code}' "$BASE/metrics")"
[ "$CODE" = 200 ] || { echo "metrics returned $CODE" >&2; exit 1; }
DONE="$(json_field "$TMP/metrics.json" done)"
[ "$DONE" -ge 1 ] || { echo "metrics report done=$DONE" >&2; exit 1; }
python3 -c 'import json,sys; m=json.load(open(sys.argv[1])); assert len(m["per_worker"]) == 2, m' "$TMP/metrics.json"

# Graceful drain.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "motifd did not drain" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/motifd.log" || { echo "no drain line in log:" >&2; cat "$TMP/motifd.log" >&2; exit 1; }
echo "motifd smoke: OK"
