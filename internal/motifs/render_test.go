package motifs

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/term"
)

func TestBinTreeRender(t *testing.T) {
	out := paperTree().Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "leaf 3") || !strings.Contains(out, "└─") || !strings.Contains(out, "├─") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	// Leaf count in rendering matches the tree.
	if strings.Count(out, "leaf ") != 5 {
		t.Fatalf("leaf lines = %d:\n%s", strings.Count(out, "leaf "), out)
	}
}

func TestLabelingRender(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lab, err := LabelTree(paperTree(), 4, SiblingLabels, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := lab.Render()
	// One line per node, each with an id and a processor label.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#1 ") || !strings.Contains(out, "@p") {
		t.Fatalf("render missing ids/labels:\n%s", out)
	}
	if !strings.Contains(out, "leaf(3)") {
		t.Fatalf("render missing payload:\n%s", out)
	}
}

func TestRenderSingleLeaf(t *testing.T) {
	out := NewLeaf(term.Int(9)).Render()
	if !strings.Contains(out, "leaf 9") {
		t.Fatalf("out = %q", out)
	}
}
