package bio

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

func scanAll(t *testing.T, src string) ([]FastaRecord, error) {
	t.Helper()
	sc := ScanFASTA(strings.NewReader(src))
	var recs []FastaRecord
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	return recs, sc.Err()
}

func TestScanFASTAYieldsRecordsIncrementally(t *testing.T) {
	sc := ScanFASTA(strings.NewReader(">a\nAC\nGU\n; comment\n\n>b desc\nGG\n>c\n"))
	want := []FastaRecord{
		{Name: "a", Raw: "ACGU"},
		{Name: "b desc", Raw: "GG"},
		{Name: "c", Raw: ""},
	}
	for i, w := range want {
		if !sc.Scan() {
			t.Fatalf("Scan %d = false (err %v)", i, sc.Err())
		}
		if got := sc.Record(); got != w {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
	if sc.Scan() {
		t.Fatalf("extra record %+v", sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	// Scan after exhaustion stays false and error-free.
	if sc.Scan() || sc.Err() != nil {
		t.Fatal("scanner not stable after exhaustion")
	}
}

func TestScanFASTADefaultNames(t *testing.T) {
	recs, err := scanAll(t, ">\nAC\n>  \nGU\n>named\nAA\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Name != "seq1" || recs[1].Name != "seq2" || recs[2].Name != "named" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestScanFASTAMalformedMidStream(t *testing.T) {
	// Sequence data before any header is a structural error with its line
	// number; no record is ever yielded from such a stream.
	sc := ScanFASTA(strings.NewReader("\n; preamble\nACGU\n>a\nAC\n"))
	if sc.Scan() {
		t.Fatalf("scan yielded %+v from header-less stream", sc.Record())
	}
	err := sc.Err()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-numbered header error", err)
	}
	// The error is sticky.
	if sc.Scan() || sc.Err() != err {
		t.Fatal("scanner not stable after structural error")
	}

	// Content-level garbage mid-stream is the normalization layer's job:
	// the scanner streams it through, ReadFasta rejects it by record name.
	if _, err := ReadFasta(strings.NewReader(">good\nACGU\n>bad\nAC!GU\n")); err == nil ||
		!strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("ReadFasta on mid-stream garbage = %v, want error naming the bad record", err)
	}
}

func TestScanFASTATruncatedMidRecord(t *testing.T) {
	// A stream cut off mid-record still yields what arrived: the partial
	// final record is flushed at EOF with whatever sequence data was seen.
	recs, err := scanAll(t, ">a\nACGU\n>b\nAC")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1] != (FastaRecord{Name: "b", Raw: "AC"}) {
		t.Fatalf("records = %+v", recs)
	}
}

// failAfterReader yields n bytes of its source then fails, modeling a
// connection dropped mid-stream.
type failAfterReader struct {
	r   io.Reader
	n   int
	err error
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	n, err := f.r.Read(p)
	f.n -= n
	if err == io.EOF {
		err = f.err
	}
	return n, err
}

func TestScanFASTAReaderError(t *testing.T) {
	boom := errors.New("connection reset")
	src := ">a\nACGU\n>b\nACGU\n"
	sc := ScanFASTA(&failAfterReader{r: strings.NewReader(src), n: 8, err: boom})
	for sc.Scan() {
	}
	if err := sc.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	// The error is sticky: further Scans stay false.
	if sc.Scan() {
		t.Fatal("Scan true after reader error")
	}
}

func TestReadFastaStillErrorsThroughWrapper(t *testing.T) {
	// readFastaRaw is now a wrapper over ScanFASTA; the reader-level error
	// must still reach ReadFasta callers.
	boom := errors.New("disk error")
	if _, err := ReadFasta(&failAfterReader{r: strings.NewReader(">a\nAC\n"), n: 4, err: boom}); !errors.Is(err, boom) {
		t.Fatalf("ReadFasta error = %v, want %v", err, boom)
	}
}

// fastaGenerator synthesizes an endless FASTA stream record by record
// without ever holding more than one line in memory, so the test below can
// push far more data through the scanner than it allows the heap to grow.
type fastaGenerator struct {
	records int
	seqLen  int
	i       int
	buf     []byte
}

func (g *fastaGenerator) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		if g.i >= g.records {
			return 0, io.EOF
		}
		g.i++
		line := strings.Repeat("ACGU", g.seqLen/4)
		g.buf = append(g.buf, fmt.Sprintf(">rec%d\n%s\n", g.i, line)...)
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

func TestScanFASTABoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory probe")
	}
	// Stream ~32 MB of FASTA through the scanner; since each record is
	// dropped after inspection, the heap must stay O(one record), not
	// O(stream). The bound is generous (4 MB over baseline for a 32 MB
	// stream) to stay robust against allocator noise.
	const records, seqLen = 8192, 4096 // ~34 MB of sequence data
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	sc := ScanFASTA(&fastaGenerator{records: records, seqLen: seqLen})
	var count, total int
	var peak uint64
	for sc.Scan() {
		rec := sc.Record()
		count++
		total += len(rec.Raw)
		if count%1024 == 0 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != records || total != records*seqLen {
		t.Fatalf("streamed %d records / %d bytes, want %d / %d", count, total, records, records*seqLen)
	}
	const slack = 4 << 20
	if baseline := before.HeapAlloc + slack; peak > baseline {
		t.Fatalf("heap grew to %d bytes streaming %d bytes of FASTA (baseline+slack %d): ingestion is not streaming",
			peak, total, baseline)
	}
}

func TestNormalizeSeqExported(t *testing.T) {
	s, err := NormalizeSeq("acgt")
	if err != nil || string(s) != "ACGU" {
		t.Fatalf("NormalizeSeq = %q, %v", s, err)
	}
	for _, bad := range []string{"", "AC-GU", "ACGX"} {
		if _, err := NormalizeSeq(bad); err == nil {
			t.Fatalf("NormalizeSeq(%q) should fail", bad)
		}
	}
}
