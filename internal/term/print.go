package term

import (
	"fmt"
	"strings"
)

// infix operators rendered in infix form by the printer, with precedence
// (higher binds tighter). Mirrors the subset of operators the parser accepts.
var infixOps = map[string]int{
	":=":   1,
	"is":   1,
	"=":    1,
	"==":   2,
	"=\\=": 2,
	">":    2,
	"<":    2,
	">=":   2,
	"=<":   2,
	"@":    3,
	"+":    4,
	"-":    4,
	"*":    5,
	"/":    5,
	"//":   5,
	"mod":  5,
}

// Write renders t in source syntax to b.
func Write(b *strings.Builder, t Term) { writeTermN(b, t, 0, nil) }

// Sprint renders t in source syntax.
func Sprint(t Term) string {
	var b strings.Builder
	writeTermN(&b, t, 0, nil)
	return b.String()
}

// SprintWith renders t in source syntax, printing unbound variables using
// the supplied name map (falling back to Var.String for unmapped vars).
// Used by the program printer to give clause-scoped, re-parseable names.
func SprintWith(t Term, names map[*Var]string) string {
	var b strings.Builder
	writeTermN(&b, t, 0, names)
	return b.String()
}

// NameVars assigns display names to the unbound variables of the given
// terms, reusing each variable's source name where that is unambiguous and
// disambiguating duplicates with numeric suffixes. Anonymous variables get
// fresh underscore-prefixed names. The result is suitable for SprintWith and
// guarantees distinct variables get distinct names.
func NameVars(terms ...Term) map[*Var]string {
	names := map[*Var]string{}
	taken := map[string]bool{}
	for _, t := range terms {
		for _, v := range Vars(t) {
			if _, done := names[v]; done {
				continue
			}
			base := v.Name
			if base == "" || base == "_" {
				base = "X"
			}
			name := base
			for i := 1; taken[name]; i++ {
				name = fmt.Sprintf("%s%d", base, i)
			}
			taken[name] = true
			names[v] = name
		}
	}
	return names
}

func writeTermN(b *strings.Builder, t Term, prec int, names map[*Var]string) {
	t = Walk(t)
	switch x := t.(type) {
	case *Compound:
		writeCompound(b, x, prec, names)
	case *Var:
		if n, ok := names[x]; ok {
			b.WriteString(n)
			return
		}
		b.WriteString(x.String())
	default:
		b.WriteString(t.String())
	}
}

func writeCompound(b *strings.Builder, c *Compound, prec int, names map[*Var]string) {
	// Lists.
	if c.Functor == ConsFunctor && len(c.Args) == 2 {
		b.WriteByte('[')
		writeTermN(b, c.Args[0], 0, names)
		t := Walk(c.Args[1])
		for {
			if IsEmptyList(t) {
				break
			}
			if h, tl, ok := IsCons(t); ok {
				b.WriteByte(',')
				writeTermN(b, h, 0, names)
				t = Walk(tl)
				continue
			}
			b.WriteByte('|')
			writeTermN(b, t, 0, names)
			break
		}
		b.WriteByte(']')
		return
	}
	// Tuples.
	if c.Functor == TupleFunctor {
		b.WriteByte('{')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeTermN(b, a, 0, names)
		}
		b.WriteByte('}')
		return
	}
	// Infix operators.
	if p, ok := infixOps[c.Functor]; ok && len(c.Args) == 2 {
		paren := p < prec
		if paren {
			b.WriteByte('(')
		}
		writeTermN(b, c.Args[0], p, names)
		if c.Functor == "@" {
			b.WriteString("@")
		} else {
			b.WriteByte(' ')
			b.WriteString(c.Functor)
			b.WriteByte(' ')
		}
		writeTermN(b, c.Args[1], p+1, names)
		if paren {
			b.WriteByte(')')
		}
		return
	}
	// Unary minus. Over a numeric literal the prefix form would re-read as
	// a single negative literal ("-0" vs -(0)), so print canonically then.
	if c.Functor == "-" && len(c.Args) == 1 {
		switch Walk(c.Args[0]).(type) {
		case Int, Float:
		default:
			b.WriteByte('-')
			writeTermN(b, c.Args[0], 6, names)
			return
		}
	}
	// Canonical form.
	b.WriteString(Atom(c.Functor).String())
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		writeTermN(b, a, 0, names)
	}
	b.WriteByte(')')
}

// Format implements fmt.Formatter-ish convenience: Sprintf("%s", t) uses
// String; this helper exists for building diagnostics on slices of terms.
func SprintSlice(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = Sprint(t)
	}
	return fmt.Sprintf("[%s]", strings.Join(parts, ", "))
}
