// Package trace defines the structured event stream emitted by the simulated
// machine, the Strand runtime, and the native skeletons.
//
// The paper's claims are about *run structure* — when work executed where,
// which values crossed processors, how deep the queues got — not just
// end-of-run totals. A Tracer receives one Event per observable occurrence,
// turning every experiment into an inspectable timeline: the Ring recorder
// makes event streams queryable from tests, and the Chrome exporter renders
// them in chrome://tracing / Perfetto.
//
// Tracing is strictly opt-in: every emission site is guarded by a nil check,
// so the default nil tracer adds no allocations to the machine's hot path
// (asserted by TestStepNoTracerAllocs in package machine).
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds. Machine-level kinds describe the simulated hardware; the
// runtime-level kinds describe the language execution mapped onto it.
const (
	// KindEnqueue: a task was placed on a processor's run queue.
	KindEnqueue Kind = iota
	// KindExecStart: a processor began executing a task.
	KindExecStart
	// KindExecFinish: the task completed; Arg holds its cost in cycles.
	KindExecFinish
	// KindShip: an inter-processor message was sent (a shipped task or a
	// stream/port payload); From is the sender, Proc the destination.
	KindShip
	// KindDeliver: a delayed (in-flight) task arrived; Arg holds the
	// latency in cycles between send and delivery.
	KindDeliver
	// KindBusy: the processor transitioned idle → busy.
	KindBusy
	// KindIdle: the processor transitioned busy → idle.
	KindIdle
	// KindPeakQueue: the processor's run queue reached a new high-water
	// mark; Arg holds the new peak length.
	KindPeakQueue
	// KindReduce: the Strand runtime attempted a reduction of the goal
	// named by Label ("name/arity").
	KindReduce
	// KindSuspend: a Strand process suspended on unbound variables.
	KindSuspend
	// KindWake: a suspended Strand process was re-enabled by a binding.
	KindWake
	// KindBind: a single-assignment variable was bound; Label names it.
	KindBind
	// KindJournal: a durability record was appended to the write-ahead
	// log; Label holds the record kind ("accepted", "ckpt", ...) and Arg
	// the encoded payload size in bytes.
	KindJournal
	// KindReplay: a store finished replaying its log on open; Arg holds
	// the number of records applied.
	KindReplay
	// KindCompact: the log was compacted down to its live records; Arg
	// holds the number of records surviving.
	KindCompact
	// KindMemoHit: a content-addressed cache lookup found the value; Arg
	// holds its size in bytes and Label its digest.
	KindMemoHit
	// KindMemoMiss: a cache lookup came up empty; Label holds the digest.
	KindMemoMiss
	// KindMemoFill: a computed value was inserted into the cache; Arg
	// holds its size in bytes and Label its digest.
	KindMemoFill
	// KindMemoCollapse: a concurrent lookup of an in-flight key attached
	// to the computation already running instead of starting its own.
	KindMemoCollapse
	// KindQoSAdmit: the tenant-aware admission layer accepted a job into a
	// per-tenant queue; Label holds "tenant/class" and Arg the tenant's
	// queue depth after admission.
	KindQoSAdmit
	// KindQoSShed: admission refused a job (per-tenant or global bound);
	// Label holds "tenant/class" and Arg the advised Retry-After in
	// seconds.
	KindQoSShed
	// KindQoSPreempt: a queued lower-class job was evicted to make room
	// for a higher-class arrival; Label holds the victim's "tenant/class".
	KindQoSPreempt
	// KindQoSDispatch: the weighted-fair scheduler handed a queued job to
	// a worker; Label holds "tenant/class" and Arg the job's queue wait in
	// microseconds.
	KindQoSDispatch
	// KindMemoPeerFetch: a local memo miss was answered by fetching the
	// entry from a peer worker; Label holds the short digest and Arg the
	// payload size in bytes.
	KindMemoPeerFetch
	// KindMemoPeerMiss: a peer fetch could not be completed (no indexed
	// peer, lookup failure, or every candidate unreachable) and the job
	// fell back to computing; Label holds the short digest.
	KindMemoPeerMiss
	// KindMemoPeerReject: a fetched payload failed digest verification and
	// was discarded; Label holds the short digest and Arg the rejected
	// payload's size in bytes.
	KindMemoPeerReject
)

var kindNames = [...]string{
	KindEnqueue:      "enqueue",
	KindExecStart:    "exec-start",
	KindExecFinish:   "exec-finish",
	KindShip:         "ship",
	KindDeliver:      "deliver",
	KindBusy:         "busy",
	KindIdle:         "idle",
	KindPeakQueue:    "peak-queue",
	KindReduce:       "reduce",
	KindSuspend:      "suspend",
	KindWake:         "wake",
	KindBind:         "bind",
	KindJournal:      "journal",
	KindReplay:       "replay",
	KindCompact:      "compact",
	KindMemoHit:      "memo.hit",
	KindMemoMiss:     "memo.miss",
	KindMemoFill:     "memo.fill",
	KindMemoCollapse: "memo.collapse",
	KindQoSAdmit:     "qos.admit",
	KindQoSShed:      "qos.shed",
	KindQoSPreempt:   "qos.preempt",
	KindQoSDispatch:  "qos.dispatch",

	KindMemoPeerFetch:  "memo.peer-fetch",
	KindMemoPeerMiss:   "memo.peer-miss",
	KindMemoPeerReject: "memo.peer-reject",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observable occurrence in a run. Events are plain values so
// that recording one never allocates.
type Event struct {
	// Cycle is the simulated machine cycle (native skeletons use elapsed
	// microseconds instead, since they run on the wall clock).
	Cycle int64
	// Kind classifies the event.
	Kind Kind
	// Proc is the processor the event happened on (the destination, for
	// KindShip/KindDeliver).
	Proc int
	// From is the source processor for KindShip/KindDeliver; -1 otherwise.
	From int
	// Arg carries the kind-specific quantity: cost for KindExecFinish,
	// latency for KindDeliver, queue length for KindPeakQueue.
	Arg int64
	// Label names the subject: a task or goal indicator, a shipped
	// message, or a bound variable. May be empty.
	Label string
}

// String renders the event in a stable one-line textual form. The
// determinism regression test compares whole formatted traces byte for
// byte, so this format must be a pure function of the event.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] p%d %s", e.Cycle, e.Proc, e.Kind)
	if e.From >= 0 {
		fmt.Fprintf(&b, " from=p%d", e.From)
	}
	switch e.Kind {
	case KindExecFinish:
		fmt.Fprintf(&b, " cost=%d", e.Arg)
	case KindDeliver:
		fmt.Fprintf(&b, " latency=%d", e.Arg)
	case KindPeakQueue:
		fmt.Fprintf(&b, " depth=%d", e.Arg)
	}
	if e.Label != "" {
		fmt.Fprintf(&b, " %s", e.Label)
	}
	return b.String()
}

// Tracer receives events as they happen. Implementations used with the
// native skeletons must be safe for concurrent use; the simulated machine
// is single-threaded and emits sequentially.
type Tracer interface {
	Event(Event)
}

// Labeler is implemented by tasks that can name themselves in events (e.g.
// a Strand process reports its goal's predicate indicator). The machine
// consults it only when a tracer is installed.
type Labeler interface {
	TraceLabel() string
}

// LabelOf returns the task's trace label, or "" if it has none.
func LabelOf(task any) string {
	if l, ok := task.(Labeler); ok {
		return l.TraceLabel()
	}
	return ""
}

// Format renders events one per line — the canonical byte representation
// compared by the determinism regression test.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Multi fans one event stream out to several tracers. Nil elements are
// skipped, so callers can compose optional tracers without special cases.
func Multi(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

func (m multiTracer) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}
