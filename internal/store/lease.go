package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// LeaseFile is the coordination file's name inside a store directory. The
// active coordinator keeps it fresh; a standby watching the same directory
// treats a stale mtime as permission to take over.
const LeaseFile = "lease.json"

// ErrLeaseHeld is returned by AcquireLease when another holder's lease is
// still fresh.
var ErrLeaseHeld = errors.New("store: lease held")

// leaseBody is what sits in the lease file: just the holder's name. Age is
// carried by the file's mtime, not a timestamp in the body, so holders with
// skewed clocks still agree (both sides read the same filesystem clock).
type leaseBody struct {
	Holder string `json:"holder"`
}

// Lease is a held coordination lease over a store directory. The holder
// renews it at a third of the TTL until Release.
type Lease struct {
	path   string
	holder string
	ttl    time.Duration

	mu   sync.Mutex
	done chan struct{}
	wg   sync.WaitGroup
}

// AcquireLease claims the lease over dir for holder, stealing it when the
// current one is stale (older than ttl) or absent. A fresh lease under a
// different holder returns ErrLeaseHeld; re-acquiring one's own lease
// always succeeds. The returned lease renews itself until Release.
func AcquireLease(dir, holder string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LeaseFile)
	if cur, age, err := ReadLease(dir); err == nil {
		if cur != holder && age < ttl {
			return nil, fmt.Errorf("%w by %q (age %s < ttl %s)", ErrLeaseHeld, cur, age.Round(time.Millisecond), ttl)
		}
	}
	l := &Lease{path: path, holder: holder, ttl: ttl, done: make(chan struct{})}
	if err := l.write(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.renew()
	return l, nil
}

// ReadLease reports the current holder and the lease's age (time since its
// last renewal). os.IsNotExist(err) distinguishes "never held".
func ReadLease(dir string) (holder string, age time.Duration, err error) {
	path := filepath.Join(dir, LeaseFile)
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	var body leaseBody
	if err := json.Unmarshal(raw, &body); err != nil {
		return "", 0, fmt.Errorf("store: lease file: %w", err)
	}
	return body.Holder, time.Since(fi.ModTime()), nil
}

// write refreshes the lease atomically (tmp + rename), so a reader never
// sees a torn body and the mtime moves in one step.
func (l *Lease) write() error {
	body, _ := json.Marshal(leaseBody{Holder: l.holder})
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// renew keeps the lease fresh at a third of the TTL: two renewal failures
// or missed cycles still leave the lease within its window.
func (l *Lease) renew() {
	defer l.wg.Done()
	tick := time.NewTicker(l.ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = l.write()
		case <-l.done:
			return
		}
	}
}

// Holder returns the name the lease was acquired under.
func (l *Lease) Holder() string { return l.holder }

// Release stops renewal and removes the lease file, letting a standby take
// over immediately instead of waiting out the TTL. Safe to call twice and
// on a nil lease.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	select {
	case <-l.done:
		l.mu.Unlock()
		return
	default:
		close(l.done)
	}
	l.mu.Unlock()
	l.wg.Wait()
	_ = os.Remove(l.path)
}
