package workload

import (
	"testing"

	"repro/internal/motifs"
	"repro/internal/skel"
	"repro/internal/term"
)

func TestIntTreeShapes(t *testing.T) {
	for _, shape := range []TreeShape{ShapeRandom, ShapeBalanced, ShapeCaterpillar} {
		tr := IntTree(32, shape, 1)
		if tr.Leaves() != 32 {
			t.Fatalf("%s: leaves = %d", shape, tr.Leaves())
		}
		if tr.Nodes() != 63 {
			t.Fatalf("%s: nodes = %d", shape, tr.Nodes())
		}
	}
}

func TestShapeExtremes(t *testing.T) {
	n := 64
	bal := IntTree(n, ShapeBalanced, 1)
	cat := IntTree(n, ShapeCaterpillar, 1)
	if bal.Height() != 7 { // log2(64)+1
		t.Fatalf("balanced height = %d", bal.Height())
	}
	if cat.Height() != n {
		t.Fatalf("caterpillar height = %d", cat.Height())
	}
}

func TestIntTreeDeterminism(t *testing.T) {
	a := IntTree(20, ShapeRandom, 7)
	b := IntTree(20, ShapeRandom, 7)
	if a.String() != b.String() {
		t.Fatal("same seed, different trees")
	}
	c := IntTree(20, ShapeRandom, 8)
	if a.String() == c.String() {
		t.Fatal("different seeds, identical trees")
	}
}

func TestSkelTreeConversion(t *testing.T) {
	tr := IntTree(16, ShapeRandom, 3)
	st := SkelTree(tr)
	if st.Nodes() != tr.Nodes() || st.Leaves() != tr.Leaves() {
		t.Fatal("conversion changed shape")
	}
	// Reduction agrees.
	want := seqReduce(tr)
	got := skel.SeqReduce(st, func(op string, l, r int64) int64 {
		if op == "+" {
			return l + r
		}
		return l * r
	})
	if got != want {
		t.Fatalf("skel reduce %d != motif reduce %d", got, want)
	}
}

func seqReduce(t *motifs.BinTree) int64 {
	if t.IsLeaf() {
		return int64(t.Leaf.(term.Int))
	}
	l, r := seqReduce(t.L), seqReduce(t.R)
	if t.Op == "+" {
		return l + r
	}
	return l * r
}

func TestUniformCost(t *testing.T) {
	m := UniformCost(5)
	for i := 0; i < 10; i++ {
		if m.Next() != 5 {
			t.Fatal("uniform cost varied")
		}
	}
	if UniformCost(0).Next() != 1 {
		t.Fatal("zero cost not clamped")
	}
}

func TestExpCostPositiveAndVaried(t *testing.T) {
	m := ExpCost(20, 1)
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		c := m.Next()
		if c < 1 {
			t.Fatalf("cost %d < 1", c)
		}
		seen[c] = true
	}
	if len(seen) < 10 {
		t.Fatalf("exponential costs suspiciously uniform: %d distinct", len(seen))
	}
}

func TestParetoCostHeavyTail(t *testing.T) {
	m := ParetoCost(1.2, 10, 2)
	var max, sum int64
	n := int64(2000)
	for i := int64(0); i < n; i++ {
		c := m.Next()
		if c < 10 {
			t.Fatalf("cost %d below minimum", c)
		}
		sum += c
		if c > max {
			max = c
		}
	}
	mean := sum / n
	if max < 10*mean {
		t.Fatalf("tail not heavy: max=%d mean=%d", max, mean)
	}
}

func TestParetoCostDefaults(t *testing.T) {
	m := ParetoCost(0, 0, 3)
	if c := m.Next(); c < 1 {
		t.Fatalf("cost %d", c)
	}
}

func TestGoalCostFnMemoizes(t *testing.T) {
	m := ExpCost(100, 4)
	fn := GoalCostFn(m)
	g := term.NewCompound("eval", term.Atom("+"), term.Int(1), term.Int(2), term.Int(3))
	c1 := fn(g)
	c2 := fn(g)
	if c1 != c2 {
		t.Fatalf("memoization failed: %d vs %d", c1, c2)
	}
}
