package skel

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intEval(op string, l, r int64) int64 {
	switch op {
	case "+":
		return l + r
	case "*":
		return l * r
	default:
		panic("bad op")
	}
}

func randomTree(n int, rng *rand.Rand) *Tree[int64] {
	if n == 1 {
		return NewLeaf(int64(rng.Intn(3) + 1))
	}
	k := 1 + rng.Intn(n-1)
	op := "+"
	if rng.Intn(2) == 0 {
		op = "*"
	}
	return NewNode(op, randomTree(k, rng), randomTree(n-k, rng))
}

func TestTreeShapeHelpers(t *testing.T) {
	tr := NewNode("+", NewLeaf[int64](1), NewNode("*", NewLeaf[int64](2), NewLeaf[int64](3)))
	if tr.Nodes() != 5 || tr.Leaves() != 3 || tr.Height() != 3 {
		t.Fatalf("nodes=%d leaves=%d height=%d", tr.Nodes(), tr.Leaves(), tr.Height())
	}
}

func TestSeqReduce(t *testing.T) {
	tr := NewNode("*",
		NewNode("*", NewLeaf[int64](3), NewLeaf[int64](2)),
		NewNode("+", NewNode("+", NewLeaf[int64](2), NewLeaf[int64](1)), NewLeaf[int64](1)))
	if got := SeqReduce(tr, intEval); got != 24 {
		t.Fatalf("SeqReduce = %d, want 24", got)
	}
}

func TestTreeReduceMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(1+rng.Intn(200), rng)
		want := SeqReduce(tr, intEval)
		for _, m := range []Mapper{MapRandom, MapRoundRobin, MapStatic} {
			for _, w := range []int{1, 2, 4, 7} {
				got, _, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: w, Mapper: m, Seed: int64(trial)})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d mapper=%s workers=%d: got %d want %d", trial, m, w, got, want)
				}
			}
		}
	}
}

func TestTreeReduceLeafOnly(t *testing.T) {
	got, stats, err := TreeReduce(context.Background(), NewLeaf[int64](9), intEval, ReduceOptions{Workers: 4})
	if err != nil || got != 9 {
		t.Fatalf("got %d, %v", got, err)
	}
	if stats.TotalUnits() != 0 {
		t.Fatalf("leaf reduce did units: %d", stats.TotalUnits())
	}
}

func TestTreeReduceNilTree(t *testing.T) {
	if _, _, err := TreeReduce[int64](context.Background(), nil, intEval, ReduceOptions{Workers: 1}); err == nil {
		t.Fatal("expected error on nil tree")
	}
}

func TestTreeReduceUnitAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTree(100, rng)
	_, stats, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: 4, Mapper: MapRandom, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	internal := int64(tr.Nodes() - tr.Leaves())
	if stats.TotalUnits() != internal {
		t.Fatalf("units = %d, want %d internal nodes", stats.TotalUnits(), internal)
	}
}

func TestTreeReduceStaticFewerCrossings(t *testing.T) {
	// Static partitioning keeps subtrees together, so it must move fewer
	// values across workers than random mapping on a large tree.
	rng := rand.New(rand.NewSource(4))
	tr := randomTree(2000, rng)
	_, stRand, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: 8, Mapper: MapRandom, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, stStatic, err := TreeReduce(context.Background(), tr, intEval, ReduceOptions{Workers: 8, Mapper: MapStatic, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if stStatic.CrossMessages >= stRand.CrossMessages {
		t.Fatalf("static crossings %d >= random crossings %d",
			stStatic.CrossMessages, stRand.CrossMessages)
	}
}

func TestFarmDynamicAndStatic(t *testing.T) {
	tasks := make([]int, 50)
	for i := range tasks {
		tasks[i] = i
	}
	sq := func(x int) int { return x * x }
	for _, static := range []bool{false, true} {
		got, stats, err := Farm(context.Background(), tasks, sq, FarmOptions{Workers: 4, Static: static})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("static=%v: got[%d] = %d", static, i, v)
			}
		}
		if stats.TotalUnits() != 50 {
			t.Fatalf("units = %d", stats.TotalUnits())
		}
		if stats.PeakConcurrent > 4 {
			t.Fatalf("peak concurrency %d exceeds workers", stats.PeakConcurrent)
		}
	}
}

func TestFarmEmpty(t *testing.T) {
	got, _, err := Farm(context.Background(), nil, func(x int) int { return x }, FarmOptions{Workers: 3})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestFarmZeroWorkersClamped(t *testing.T) {
	got, _, err := Farm(context.Background(), []int{1, 2}, func(x int) int { return x + 1 }, FarmOptions{})
	if err != nil || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestHierarchicalFarm(t *testing.T) {
	tasks := make([]int, 40)
	for i := range tasks {
		tasks[i] = i
	}
	got, stats, err := HierarchicalFarm(context.Background(), tasks, func(x int) int { return 2 * x }, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if len(stats.UnitsPerWorker) != 6 {
		t.Fatalf("worker slots = %d", len(stats.UnitsPerWorker))
	}
	if stats.TotalUnits() != 40 {
		t.Fatalf("units = %d", stats.TotalUnits())
	}
}

func TestHierarchicalFarmBadShape(t *testing.T) {
	if _, _, err := HierarchicalFarm(context.Background(), []int{1}, func(x int) int { return x }, 0, 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestPipeline(t *testing.T) {
	items := []int{1, 2, 3, 4, 5}
	out, err := Pipeline(items,
		func(x int) int { return x + 1 },
		func(x int) int { return x * 10 },
		func(x int) int { return x - 3 },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := (items[i]+1)*10 - 3
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestPipelineNoStages(t *testing.T) {
	out, err := Pipeline([]int{7, 8})
	if err != nil || len(out) != 2 || out[0] != 7 {
		t.Fatalf("out = %v, %v", out, err)
	}
}

func TestProducerConsumerFigure1(t *testing.T) {
	var consumed []int
	n := ProducerConsumer(4,
		func(i int) int { return i * i },
		func(v int) { consumed = append(consumed, v) })
	if n != 4 {
		t.Fatalf("exchanges = %d", n)
	}
	for i, v := range consumed {
		if v != i*i {
			t.Fatalf("consumed = %v", consumed)
		}
	}
}

func TestDivideConquerFibonacci(t *testing.T) {
	fib := func(parallel int) func(n int) int {
		return func(n int) int {
			v, err := DivideConquer(context.Background(), n,
				func(n int) bool { return n < 2 },
				func(n int) int { return n },
				func(n int) []int { return []int{n - 1, n - 2} },
				func(_ int, rs []int) int { return rs[0] + rs[1] },
				DCOptions{Parallel: parallel, Depth: 3})
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	seq, par := fib(0), fib(4)
	for n := 0; n <= 15; n++ {
		if seq(n) != par(n) {
			t.Fatalf("fib(%d): seq %d != par %d", n, seq(n), par(n))
		}
	}
	if got := par(15); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestMergeSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(500)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		got, err := MergeSort(context.Background(), xs, func(a, b int) bool { return a < b }, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sorted mismatch at %d", trial, i)
			}
		}
	}
}

func TestMergeSortStability(t *testing.T) {
	type kv struct{ k, seq int }
	xs := []kv{{1, 0}, {0, 1}, {1, 2}, {0, 3}, {1, 4}}
	got, err := MergeSort(context.Background(), xs, func(a, b kv) bool { return a.k < b.k }, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Equal keys must preserve original order (merge takes from a first).
	var zeroSeqs, oneSeqs []int
	for _, e := range got {
		if e.k == 0 {
			zeroSeqs = append(zeroSeqs, e.seq)
		} else {
			oneSeqs = append(oneSeqs, e.seq)
		}
	}
	if !sort.IntsAreSorted(zeroSeqs) || !sort.IntsAreSorted(oneSeqs) {
		t.Fatalf("unstable: %v", got)
	}
}

func TestNQueensCounts(t *testing.T) {
	// Known solution counts for n-queens.
	want := map[int]int{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, count := range want {
		q := NQueens{N: n}
		sols, _, err := Search[NQState](context.Background(), q, q.Start(), SearchOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != count {
			t.Fatalf("n=%d: %d solutions, want %d", n, len(sols), count)
		}
	}
}

func TestNQueensFirstOnly(t *testing.T) {
	q := NQueens{N: 8}
	sols, _, err := Search[NQState](context.Background(), q, q.Start(), SearchOptions{Workers: 4, FirstOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	if !q.IsGoal(sols[0]) {
		t.Fatal("returned non-goal state")
	}
}

func TestNQueensNoSolution(t *testing.T) {
	q := NQueens{N: 3}
	sols, _, err := Search[NQState](context.Background(), q, q.Start(), SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Fatalf("3-queens should have no solutions, got %d", len(sols))
	}
}

func TestSearchWorkerAccounting(t *testing.T) {
	q := NQueens{N: 8}
	_, stats, err := Search[NQState](context.Background(), q, q.Start(), SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUnits() == 0 {
		t.Fatal("no units recorded")
	}
}

func TestJacobiConvergesToLaplace(t *testing.T) {
	// Dirichlet problem: top boundary at 1, others at 0. The discrete
	// harmonic solution is reproduced by relaxation; check interior values
	// are strictly between boundary extremes and the sweep count stops at
	// tolerance.
	g := NewGrid(18, 18)
	for c := 0; c < 18; c++ {
		g.Set(0, c, 1.0)
	}
	out, sweeps, delta, err := Jacobi(context.Background(), g, JacobiOptions{Workers: 4, Iterations: 10000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if sweeps == 10000 {
		t.Fatalf("did not converge (delta %g)", delta)
	}
	mid := out.At(9, 9)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("interior value %g outside (0,1)", mid)
	}
	// Symmetry: column 9 and column 8 mirror around the vertical axis.
	if math.Abs(out.At(9, 8)-out.At(9, 9)) > 0.05 {
		t.Fatalf("asymmetric solution: %g vs %g", out.At(9, 8), out.At(9, 9))
	}
}

func TestJacobiWorkerCountInvariance(t *testing.T) {
	base := NewGrid(12, 12)
	for c := 0; c < 12; c++ {
		base.Set(0, c, 2.0)
		base.Set(11, c, -1.0)
	}
	run := func(workers int) *Grid {
		out, _, _, err := Jacobi(context.Background(), base, JacobiOptions{Workers: workers, Iterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	g1, g4 := run(1), run(4)
	for i := range g1.Data {
		if math.Abs(g1.Data[i]-g4.Data[i]) > 1e-12 {
			t.Fatalf("jacobi differs with worker count at %d: %g vs %g", i, g1.Data[i], g4.Data[i])
		}
	}
}

func TestJacobiTooSmall(t *testing.T) {
	if _, _, _, err := Jacobi(context.Background(), NewGrid(2, 5), JacobiOptions{Workers: 1, Iterations: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestParMap(t *testing.T) {
	xs := []int{1, 2, 3}
	got := ParMap(xs, func(x int) int { return -x }, 2)
	if got[0] != -1 || got[1] != -2 || got[2] != -3 {
		t.Fatalf("got %v", got)
	}
}

func TestParReduce(t *testing.T) {
	xs := make([]int64, 1000)
	var want int64
	for i := range xs {
		xs[i] = int64(i)
		want += int64(i)
	}
	for _, w := range []int{1, 3, 8, 2000} {
		got := ParReduce(xs, 0, func(a, b int64) int64 { return a + b }, w)
		if got != want {
			t.Fatalf("workers=%d: got %d want %d", w, got, want)
		}
	}
	if ParReduce(nil, int64(7), func(a, b int64) int64 { return a + b }, 4) != 7 {
		t.Fatal("empty reduce should return zero value")
	}
}

// Property: ParScan equals the sequential prefix sums for any input.
func TestPropParScanMatchesSequential(t *testing.T) {
	f := func(xs []int32, w uint8) bool {
		workers := int(w%8) + 1
		in := make([]int64, len(xs))
		for i, x := range xs {
			in[i] = int64(x)
		}
		got := ParScan(in, 0, func(a, b int64) int64 { return a + b }, workers)
		acc := int64(0)
		for i, x := range in {
			acc += x
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tree reduction with max is order-insensitive and matches the
// slice maximum.
func TestPropTreeReduceMax(t *testing.T) {
	f := func(raw []int16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		leaves := make([]*Tree[int64], len(raw))
		var want int64 = math.MinInt64
		for i, x := range raw {
			leaves[i] = NewLeaf(int64(x))
			if int64(x) > want {
				want = int64(x)
			}
		}
		// Build a random-shaped tree over the leaves.
		for len(leaves) > 1 {
			i := rng.Intn(len(leaves) - 1)
			n := NewNode("max", leaves[i], leaves[i+1])
			leaves = append(leaves[:i], append([]*Tree[int64]{n}, leaves[i+2:]...)...)
		}
		got, _, err := TreeReduce(context.Background(), leaves[0], func(op string, l, r int64) int64 {
			if l > r {
				return l
			}
			return r
		}, ReduceOptions{Workers: 4, Mapper: MapRandom, Seed: seed})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
