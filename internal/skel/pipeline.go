package skel

import (
	"fmt"
	"sync"
)

// Stage is one pipeline stage: a function from an input item to an output
// item. Stages communicate over channels, so all stages run concurrently on
// different items — the stream-processing structure that Figure 1's
// producer/consumer program exemplifies at the language level.
type Stage[T any] func(T) T

// Pipeline feeds the items through the stages in order, with every stage
// running concurrently, and returns the fully processed items in order.
func Pipeline[T any](items []T, stages ...Stage[T]) ([]T, error) {
	if len(stages) == 0 {
		out := make([]T, len(items))
		copy(out, items)
		return out, nil
	}
	in := make(chan T, len(items))
	for _, it := range items {
		in <- it
	}
	close(in)

	cur := in
	var wg sync.WaitGroup
	for _, st := range stages {
		st := st
		prev := cur
		next := make(chan T, cap(in))
		waitGroupGo(&wg, func() {
			defer close(next)
			for it := range prev {
				next <- st(it)
			}
		})
		cur = next
	}
	var out []T
	for it := range cur {
		out = append(out, it)
	}
	wg.Wait()
	if len(out) != len(items) {
		return nil, fmt.Errorf("skel: pipeline dropped items: %d in, %d out", len(items), len(out))
	}
	return out, nil
}

// ProducerConsumer is the native twin of the paper's Figure 1: a producer
// generates n items, a consumer acknowledges each one, and the two run in
// lock step over an unbuffered channel (synchronous communication). It
// returns the number of exchanges completed.
func ProducerConsumer(n int, produce func(i int) int, consume func(v int)) int {
	ch := make(chan int) // unbuffered: producer blocks until consumer takes
	ack := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			ch <- produce(i)
			<-ack // the paper's sync acknowledgment
		}
		close(ch)
	}()
	count := 0
	for v := range ch {
		consume(v)
		count++
		ack <- struct{}{}
	}
	return count
}
