// Command alignbench drives the multiple-sequence-alignment experiments
// (E11): native wall-clock speedup and simulated motif comparison.
//
// Usage:
//
//	alignbench [-n seqs] [-len seqLen] [-seed N] [-mode native|sim|both]
//	alignbench -trace out.json [-n seqs] [-len seqLen] [-seed N]
//	alignbench -serve URL|self [-clients 1,4,16] [-jobs 48] [-search] [-grid] [-out BENCH_serve.json]
//	alignbench -serve self -memo BYTES [-clients 1,4,16] [-jobs 48] [-out BENCH_memo.json]
//	alignbench -cluster URL [-clients 1,4,16] [-jobs 48] [-out BENCH_cluster.json]
//	alignbench -pipeline URL|self [-n seqs] [-len seqLen] [-group N] [-stage-delay-us N]
//
// With -trace, alignbench runs one simulated Tree-Reduce-2 family
// alignment with structured tracing on and writes the event stream as a
// Chrome trace_event file (open in chrome://tracing or Perfetto).
//
// With -serve, alignbench is a load generator for motifd: it drives the
// daemon at the given URL ("self" hosts an in-process server) with
// alignment jobs at each client-concurrency level and reports throughput
// and client-perceived p50/p95 latency, optionally as JSON via -out. A 429
// response is honored: the generator backs off for at least the daemon's
// Retry-After, jittered, rather than hammering a shedding queue. -search
// and -grid add a row per level driving those job types through the same
// submit/poll path.
//
// With -cluster, the same load generator drives a motifctl coordinator —
// the job API is identical, so this measures cluster scheduling (placement,
// shipping, retry) end to end.
//
// With -pipeline, alignbench submits one streaming pipeline job (filter →
// align → reduce → report) and follows its NDJSON stream, reporting
// time-to-first-record against total elapsed — the streaming pipeline's
// defining advantage over a batch job.
//
// With -memo, each concurrency level runs twice over the same job seeds: a
// cold pass that computes every alignment and a warm pass answered from the
// daemon's content-addressed cache. The report carries both passes plus the
// warm-over-cold speedup and the daemon's cache hit-rate. For -serve self
// the value is also the in-process daemon's cache budget; a remote target
// must itself run with -memo for the warm pass to hit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
	"repro/internal/cmdutil"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/motifs"
	"repro/internal/skel"
	"repro/internal/strand"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 24, "number of sequences in the synthetic family")
	seqLen := flag.Int("len", 120, "ancestral sequence length")
	seed := cmdutil.Seed(7)
	mode := flag.String("mode", "both", "native (wall-clock skeleton), sim (motif simulator), quality, or both")
	fasta := flag.String("fasta", "", "align the sequences in this FASTA file and print the alignment (overrides -mode)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of one simulated alignment run to this file (overrides -mode)")
	serveURL := flag.String("serve", "", "load-generate against the motifd at this URL (\"self\" hosts one in-process); overrides -mode")
	clusterURL := flag.String("cluster", "", "load-generate against the motifctl coordinator at this URL; overrides -mode")
	pipelineURL := flag.String("pipeline", "", "run one streaming pipeline job against the motifd at this URL (\"self\" hosts one in-process); overrides -mode")
	group := flag.Int("group", 8, "reduce-stage window for -pipeline jobs")
	stageDelay := flag.Int64("stage-delay-us", 0, "per-record report-stage delay for -pipeline (µs; makes streaming visible)")
	clients := flag.String("clients", "1,4,16", "client-concurrency levels for -serve, comma-separated")
	jobs := flag.Int("jobs", 48, "alignment jobs per concurrency level for -serve")
	out := flag.String("out", "", "write the -serve load report as JSON to this file")
	band := flag.Int("band", 0, "band half-width for -serve/-cluster jobs (0 = exact alignment)")
	searchLoad := flag.Bool("search", false, "add a search-job row per -serve/-cluster client level (or-parallel pattern scan)")
	gridLoad := flag.Bool("grid", false, "add a grid-job row per -serve/-cluster client level (stencil relaxation)")
	memoBytes := cmdutil.MemoBytes(0)
	flag.Parse()
	loadBand = *band
	loadSearch, loadGrid = *searchLoad, *gridLoad

	if *pipelineURL != "" {
		if err := runPipeline(*pipelineURL, *n, *seqLen, *seed, *band, *group, *stageDelay, *memoBytes); err != nil {
			fatal(err)
		}
		return
	}

	if *serveURL != "" || *clusterURL != "" {
		benchmark, target := "serve", *serveURL
		if *clusterURL != "" {
			if *serveURL != "" {
				fatal(fmt.Errorf("-serve and -cluster are mutually exclusive"))
			}
			benchmark, target = "cluster", *clusterURL
			if target == "self" {
				fatal(fmt.Errorf("-cluster needs a running motifctl URL (a coordinator without workers is inert)"))
			}
		}
		levels, err := cmdutil.IntList(*clients)
		if err != nil {
			fatal(fmt.Errorf("-clients: %w", err))
		}
		// The load jobs are small on purpose: the interesting quantity is
		// serving behavior (queueing, batching, shedding), not one job's
		// alignment runtime.
		ln, ll := *n, *seqLen
		if ln > 8 {
			ln = 8
		}
		if ll > 48 {
			ll = 48
		}
		if err := runLoad(benchmark, target, levels, *jobs, ln, ll, *seed, *out, *memoBytes); err != nil {
			fatal(err)
		}
		return
	}

	if *traceFile != "" {
		if err := runTraced(*traceFile, *n, *seqLen, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fam, err := bio.ReadFasta(f)
		if err != nil {
			fatal(err)
		}
		aln, _, err := bio.AlignFamily(context.Background(), fam, skel.ReduceOptions{Workers: 4, Mapper: skel.MapRandom, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := bio.WriteAlignedFasta(os.Stdout, aln, fam.Names); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "aligned %d sequences, %d columns, SP identity %.3f\n",
			len(aln), aln.Width(), aln.SPIdentity())
		return
	}

	if *mode == "quality" || *mode == "both" {
		tab, err := exp.E15AlignmentQuality(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== E15: alignment quality vs divergence ==\n%s\n", tab)
	}

	if *mode == "native" || *mode == "both" {
		tab, err := exp.E11AlignmentSpeedup(*n, *seqLen, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== E11a: native alignment speedup (%d sequences, len %d) ==\n%s\n", *n, *seqLen, tab)
	}
	if *mode == "sim" || *mode == "both" {
		// The simulator interprets every reduction; keep the instance small.
		sn, sl := *n, *seqLen
		if sn > 12 {
			sn = 12
		}
		if sl > 48 {
			sl = 48
		}
		tab, err := exp.E11AlignmentSimulated(sn, sl, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== E11b: simulated motif comparison (%d sequences, len %d) ==\n%s\n", sn, sl, tab)
	}
}

// runTraced aligns a small synthetic family under Tree-Reduce-2 on the
// simulator with tracing enabled, writing the Chrome trace and printing the
// run's structural summaries. The simulator interprets every reduction, so
// the instance is capped to keep the traced run quick.
func runTraced(file string, n, seqLen int, seed int64) error {
	if n > 12 {
		n = 12
	}
	if seqLen > 48 {
		seqLen = 48
	}
	fam, err := bio.Evolve(n, seqLen, 0.08, 0.01, seed)
	if err != nil {
		return err
	}
	guide, err := bio.GuideTree(fam)
	if err != nil {
		return err
	}
	seqTree := bio.SeqTree(guide, fam)

	ring := trace.NewRing(0)
	chrome := trace.NewChrome()
	procs := 4
	cfg := motifs.RunConfig{
		Procs:   procs,
		Seed:    seed,
		Natives: map[string]strand.NativeFn{"eval/4": bio.EvalNative()},
		Tracer:  trace.Multi(ring, chrome),
	}
	_, res, err := motifs.RunTreeReduce2("", seqTree, motifs.SiblingLabels, cfg)
	if err != nil {
		return fmt.Errorf("traced TR2 alignment: %w", err)
	}

	f, err := os.Create(file)
	if err != nil {
		return err
	}
	if _, err := chrome.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	met := res.Metrics
	fmt.Printf("traced tree-reduce-2 alignment of %d sequences (len %d) on %d procs\n%s\n\n", n, seqLen, procs, met)
	fmt.Printf("busy/idle timeline (makespan %d cycles):\n%s\n",
		met.Makespan, metrics.BusyTimeline(ring.Events(), procs, met.Makespan, 72))
	fmt.Printf("wrote %s: %d trace events (reductions %d + messages %d)\n",
		file, chrome.EventCount(), met.TotalReductions(), met.Messages)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignbench:", err)
	os.Exit(1)
}
