package serve

import (
	"errors"

	"repro/internal/qos"
)

// ErrQueueFull is returned by tryPush when admission refuses a job (the
// global bound, or the submitting tenant's own bound under fair QoS); the
// HTTP layer maps it to 429 + Retry-After (load shedding).
var ErrQueueFull = errors.New("serve: admission queue full")

// RetryAfterSeconds is the fallback Retry-After hint for 429s whose cause
// carries no drain estimate: one second is the order of an admission-queue
// drain at typical job sizes. Sheds from the admission scheduler instead
// advise the refused tenant's estimated drain time (queue depth × observed
// service rate) via retryAfterSeconds; this constant remains the floor the
// cluster re-placement path assumes when a saturated worker omits or
// mangles the header.
const RetryAfterSeconds = 1

// ErrDraining is returned once the server has begun graceful shutdown; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: server draining")

// queue is the bounded admission layer between the HTTP front end and the
// worker pool, backed by the tenant-aware qos.Scheduler: in fair mode
// tenants get weighted-fair service with per-tenant bounds and class
// preemption; in flat mode it reproduces the original single-FIFO
// semantics. Either way its capacity is the system's only buffer — when a
// bound is hit, work is shed instead of growing memory without bound.
type queue struct {
	sched *qos.Scheduler
}

func newQueue(opt qos.Options) *queue {
	return &queue{sched: qos.New(opt)}
}

// queueFullError carries the scheduler's drain-derived shed advice while
// still matching the errors.Is(err, ErrQueueFull) checks existing callers
// rely on.
type queueFullError struct {
	shed *qos.ShedError
}

func (e *queueFullError) Error() string { return e.shed.Error() }
func (e *queueFullError) Unwrap() error { return ErrQueueFull }

// retryAfterSeconds extracts the drain-derived Retry-After from a shed
// error, falling back to the legacy constant for errors without one.
func retryAfterSeconds(err error) int {
	var qf *queueFullError
	if errors.As(err, &qf) {
		return qf.shed.RetryAfterSeconds()
	}
	return RetryAfterSeconds
}

// tryPush admits j without blocking. A non-nil victim is a queued
// lower-class job the scheduler evicted to make room (the caller owns
// failing it back to its client); an ErrQueueFull-wrapping error means j
// itself was shed, ErrDraining that the server is shutting down.
func (q *queue) tryPush(j *Job) (victim *Job, err error) {
	v, err := q.sched.Push(j, j.req.Tenant, j.req.qosClass())
	if err != nil {
		var shed *qos.ShedError
		if errors.As(err, &shed) {
			return nil, &queueFullError{shed: shed}
		}
		if errors.Is(err, qos.ErrClosed) {
			return nil, ErrDraining
		}
		return nil, err
	}
	if v != nil {
		return v.(*Job), nil
	}
	return nil, nil
}

// pushResumed re-admits a crash-recovered job above every bound: the job
// was already accepted and journaled once, so shedding it on restart would
// break the durability contract.
func (q *queue) pushResumed(j *Job) {
	_ = q.sched.PushForce(j, j.req.Tenant, j.req.qosClass())
}

// pop blocks for the next job in scheduling order, returning ok == false
// once the queue is closed and drained — the workers' exit signal.
func (q *queue) pop() (*Job, bool) {
	v, ok := q.sched.Pop(true)
	if !ok {
		return nil, false
	}
	return v.(*Job), true
}

// tryPop returns immediately; ok == false means nothing is queued right
// now. The batcher uses it to drain extra work without blocking.
func (q *queue) tryPop() (*Job, bool) {
	v, ok := q.sched.Pop(false)
	if !ok {
		return nil, false
	}
	return v.(*Job), true
}

// close stops admission; workers drain what was already accepted.
func (q *queue) close() { q.sched.Close() }

// depth is the number of admitted jobs not yet picked up by a worker.
func (q *queue) depth() int { return q.sched.Depth() }

// capacity is the global queue bound.
func (q *queue) capacity() int { return q.sched.Capacity() }
