package skel

import (
	"context"
	"fmt"
	"sync"
)

// FarmOptions configures a task farm.
type FarmOptions struct {
	// Workers is the worker count; minimum 1.
	Workers int
	// Static, when true, pre-partitions the task index space into
	// contiguous blocks (one per worker) instead of letting idle workers
	// pull from a shared queue. This is the paper's static-vs-dynamic
	// allocation contrast: static is ideal for uniform task costs, dynamic
	// wins when costs are non-uniform and unpredictable.
	Static bool
}

// Farm applies f to every task, in parallel, returning results in task
// order — the native form of the scheduler motif: a manager hands tasks to
// idle workers. Dynamic mode (default) is self-balancing; static mode fixes
// the assignment up front.
//
// Cancellation is observed between tasks: when ctx is done, workers stop
// pulling work and Farm returns ctx.Err() with the partial results
// computed so far. A task already executing runs to completion.
func Farm[T, R any](ctx context.Context, tasks []T, f func(T) R, opts FarmOptions) ([]R, *Stats, error) {
	p := opts.Workers
	if p < 1 {
		p = 1
	}
	n := len(tasks)
	results := make([]R, n)
	stats := &Stats{UnitsPerWorker: make([]int64, p)}
	if n == 0 {
		return results, stats, ctx.Err()
	}
	var conc gauge
	var wg sync.WaitGroup

	if opts.Static {
		for w := 0; w < p; w++ {
			w := w
			lo, hi := w*n/p, (w+1)*n/p
			waitGroupGo(&wg, func() {
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					conc.inc()
					results[i] = f(tasks[i])
					conc.dec()
					stats.UnitsPerWorker[w]++
				}
			})
		}
	} else {
		idx := make(chan int, n)
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		for w := 0; w < p; w++ {
			w := w
			waitGroupGo(&wg, func() {
				for i := range idx {
					if ctx.Err() != nil {
						return
					}
					conc.inc()
					results[i] = f(tasks[i])
					conc.dec()
					stats.UnitsPerWorker[w]++
				}
			})
		}
	}
	wg.Wait()
	stats.PeakConcurrent = conc.peak.Load()
	return results, stats, ctx.Err()
}

// HierarchicalFarm runs a two-level manager/worker farm: tasks are first
// split among `groups` sub-managers, each of which runs a dynamic farm over
// its own workers. This is the paper's example of motif reuse through
// modification — "a scheduler motif might be adapted to the demands of a
// highly parallel computer by introducing additional levels in its
// manager/worker hierarchy". Within a group allocation is dynamic; across
// groups it is static, so the hierarchy trades balance for reduced
// contention on a single manager.
func HierarchicalFarm[T, R any](ctx context.Context, tasks []T, f func(T) R, groups, workersPerGroup int) ([]R, *Stats, error) {
	if groups < 1 || workersPerGroup < 1 {
		return nil, nil, fmt.Errorf("skel: HierarchicalFarm needs positive groups and workers, got %d×%d",
			groups, workersPerGroup)
	}
	n := len(tasks)
	results := make([]R, n)
	stats := &Stats{UnitsPerWorker: make([]int64, groups*workersPerGroup)}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		g := g
		lo, hi := g*n/groups, (g+1)*n/groups
		waitGroupGo(&wg, func() {
			sub, subStats, err := Farm(ctx, tasks[lo:hi], f, FarmOptions{Workers: workersPerGroup})
			if err != nil {
				return
			}
			copy(results[lo:hi], sub)
			for w, c := range subStats.UnitsPerWorker {
				stats.UnitsPerWorker[g*workersPerGroup+w] = c
			}
		})
	}
	wg.Wait()
	return results, stats, ctx.Err()
}
