package cluster

import (
	"sort"
	"sync"
	"time"
)

// workerState is the coordinator's record of one registered worker.
type workerState struct {
	info  WorkerInfo
	index int

	// lastBeat is the most recent registration or heartbeat; dead is set
	// by the expiry sweep and cleared by re-registration.
	lastBeat time.Time
	dead     bool

	// Last heartbeat payload.
	queueDepth int
	inflight   int64
	done       int64
	failed     int64
	memoHits   int64
	memoMisses int64
	// memoRemoteHits counts local misses the worker answered by peer
	// fetch (memoshare) — the remote half of the cluster warm hit-rate.
	memoRemoteHits int64
	tenants        map[string]int // per-tenant queue depth, non-empty only
	// startOffset is the worker pool's t=0 expressed in coordinator
	// microseconds (from heartbeat uptime), used to align merged traces.
	startOffset int64

	// saturatedUntil is the end of the backoff window opened by a 429
	// from this worker.
	saturatedUntil time.Time

	// Coordinator-side shipping counters.
	shipped   int64
	completed int64
	retried   int64 // jobs re-placed off this worker after it failed
}

// registry tracks registered workers and their liveness. All methods are
// safe for concurrent use.
type registry struct {
	mu        sync.Mutex
	expiry    time.Duration
	start     time.Time
	workers   map[string]*workerState
	nextIndex int
}

func newRegistry(expiry time.Duration, start time.Time) *registry {
	return &registry{expiry: expiry, start: start, workers: make(map[string]*workerState)}
}

// register adds or refreshes a worker, preserving the index (and so the
// trace lane) of a worker that re-registers under its old ID.
func (r *registry) register(info WorkerInfo, now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws, ok := r.workers[info.ID]
	if !ok {
		ws = &workerState{index: r.nextIndex}
		r.nextIndex++
		r.workers[info.ID] = ws
	}
	ws.info = info
	ws.lastBeat = now
	ws.dead = false
	ws.saturatedUntil = time.Time{}
	return ws.index
}

// heartbeat records a load report; false means the worker is unknown (the
// coordinator restarted) and must re-register.
func (r *registry) heartbeat(hb Heartbeat, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws, ok := r.workers[hb.ID]
	if !ok {
		return false
	}
	ws.lastBeat = now
	ws.dead = false
	ws.queueDepth = hb.QueueDepth
	ws.inflight = hb.Inflight
	ws.done = hb.Done
	ws.failed = hb.Failed
	ws.memoHits = hb.MemoHits
	ws.memoMisses = hb.MemoMisses
	ws.memoRemoteHits = hb.MemoRemoteHits
	ws.tenants = hb.Tenants
	ws.startOffset = now.Sub(r.start).Microseconds() - hb.UptimeMicros
	return true
}

// sweep marks workers whose last beat is older than the expiry window as
// dead and returns the IDs that died in this sweep.
func (r *registry) sweep(now time.Time) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var died []string
	for id, ws := range r.workers {
		if !ws.dead && now.Sub(ws.lastBeat) > r.expiry {
			ws.dead = true
			died = append(died, id)
		}
	}
	sort.Strings(died)
	return died
}

// live snapshots the placement view of every live worker, ordered by
// index.
func (r *registry) live(now time.Time) []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []WorkerView
	for id, ws := range r.workers {
		if ws.dead {
			continue
		}
		out = append(out, WorkerView{
			ID:        id,
			Index:     ws.index,
			Addr:      ws.info.Addr,
			Load:      ws.queueDepth + int(ws.inflight),
			Saturated: now.Before(ws.saturatedUntil),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// isDead reports whether the worker is currently marked dead (or unknown).
func (r *registry) isDead(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws, ok := r.workers[id]
	return !ok || ws.dead
}

// markSaturated opens a 429 backoff window for the worker.
func (r *registry) markSaturated(id string, until time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ws, ok := r.workers[id]; ok && until.After(ws.saturatedUntil) {
		ws.saturatedUntil = until
	}
}

// note* bump the coordinator-side shipping counters.
func (r *registry) noteShipped(id string)   { r.bump(id, func(ws *workerState) { ws.shipped++ }) }
func (r *registry) noteCompleted(id string) { r.bump(id, func(ws *workerState) { ws.completed++ }) }
func (r *registry) noteRetried(id string)   { r.bump(id, func(ws *workerState) { ws.retried++ }) }

func (r *registry) bump(id string, f func(*workerState)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ws, ok := r.workers[id]; ok {
		f(ws)
	}
}

// snapshot returns the metrics view of every worker, ordered by index.
func (r *registry) snapshot(now time.Time) []WorkerMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerMetrics, 0, len(r.workers))
	for id, ws := range r.workers {
		out = append(out, WorkerMetrics{
			ID:             id,
			Index:          ws.index,
			Addr:           ws.info.Addr,
			PoolWorkers:    ws.info.Workers,
			Live:           !ws.dead,
			LastBeatAgeMS:  float64(now.Sub(ws.lastBeat).Microseconds()) / 1000,
			QueueDepth:     ws.queueDepth,
			Inflight:       ws.inflight,
			Done:           ws.done,
			Failed:         ws.failed,
			MemoHits:       ws.memoHits,
			MemoMisses:     ws.memoMisses,
			MemoRemoteHits: ws.memoRemoteHits,
			Tenants:        ws.tenants,
			Shipped:        ws.shipped,
			Completed:      ws.completed,
			Retried:        ws.retried,
			Saturated:      now.Before(ws.saturatedUntil),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// traceSources returns, for every live worker, what the trace merger needs:
// address, lane base offset input (pool size), and clock offset.
func (r *registry) traceSources() []traceSource {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []traceSource
	for id, ws := range r.workers {
		if ws.dead {
			continue
		}
		out = append(out, traceSource{
			id:          id,
			index:       ws.index,
			addr:        ws.info.Addr,
			poolWorkers: ws.info.Workers,
			clockOffset: ws.startOffset,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

type traceSource struct {
	id          string
	index       int
	addr        string
	poolWorkers int
	clockOffset int64
}
