package motifs

import (
	"math"
	"testing"
)

// jacobiRef is the Go reference for 1-D Jacobi relaxation of the flattened
// row with fixed boundary `edge` at both ends.
func jacobiRef(cells []float64, iters int, edge float64) []float64 {
	cur := append([]float64(nil), cells...)
	next := make([]float64, len(cells))
	for k := 0; k < iters; k++ {
		for i := range cur {
			l, r := edge, edge
			if i > 0 {
				l = cur[i-1]
			}
			if i < len(cur)-1 {
				r = cur[i+1]
			}
			next[i] = (l + r) / 2
		}
		cur, next = next, cur
	}
	return cur
}

func flatten(blocks [][]float64) []float64 {
	var out []float64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func TestGridMotifMatchesReference(t *testing.T) {
	blocks := [][]float64{
		{1, 2, 3},
		{4, 5},
		{6, 7, 8, 9},
	}
	const iters = 6
	const edge = 0.0
	want := jacobiRef(flatten(blocks), iters, edge)

	got, res, err := RunGrid(JacobiRelaxSrc, blocks, iters, edge, RunConfig{Procs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuspendedAtEnd != 0 {
		t.Fatalf("suspended = %d", res.SuspendedAtEnd)
	}
	flat := flatten(got)
	if len(flat) != len(want) {
		t.Fatalf("cells = %d, want %d", len(flat), len(want))
	}
	for i := range want {
		if math.Abs(flat[i]-want[i]) > 1e-9 {
			t.Fatalf("cell %d = %g, want %g\n got %v\nwant %v", i, flat[i], want[i], flat, want)
		}
	}
}

func TestGridMotifDistributesBlocks(t *testing.T) {
	blocks := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	_, res, err := RunGrid(JacobiRelaxSrc, blocks, 4, 0, RunConfig{Procs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each block runs on its own processor.
	for p := 0; p < 4; p++ {
		if res.Metrics.Reductions[p] == 0 {
			t.Fatalf("processor %d idle: %v", p+1, res.Metrics.Reductions)
		}
	}
}

func TestGridMotifSingleBlock(t *testing.T) {
	got, _, err := RunGrid(JacobiRelaxSrc, [][]float64{{10, 20, 30}}, 3, 1, RunConfig{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := jacobiRef([]float64{10, 20, 30}, 3, 1)
	for i := range want {
		if math.Abs(got[0][i]-want[i]) > 1e-9 {
			t.Fatalf("cell %d = %g, want %g", i, got[0][i], want[i])
		}
	}
}

func TestGridMotifZeroIterations(t *testing.T) {
	blocks := [][]float64{{1, 2}, {3, 4}}
	got, _, err := RunGrid(JacobiRelaxSrc, blocks, 0, 0, RunConfig{Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		for j := range b {
			if got[i][j] != b[j] {
				t.Fatalf("zero iterations changed block %d", i)
			}
		}
	}
}

func TestGridMotifConvergesTowardLinearProfile(t *testing.T) {
	// With edges 0 and 0 everything decays toward 0.
	blocks := [][]float64{{8, 8}, {8, 8}}
	got, _, err := RunGrid(JacobiRelaxSrc, blocks, 60, 0, RunConfig{Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		for _, v := range b {
			if math.Abs(v) > 0.1 {
				t.Fatalf("did not decay: %v", got)
			}
		}
	}
}
