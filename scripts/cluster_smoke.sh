#!/bin/sh
# Smoke test for the cluster layer, run by CI and `make cluster-smoke`:
# start a motifctl coordinator and two motifd workers, submit a batch of
# alignment jobs, kill one worker mid-run with SIGKILL, and assert that
# every accepted job still completes (re-placed onto the survivor), that
# the coordinator noticed the death, and that coordinator + survivor drain
# cleanly on SIGTERM.
set -eu

COORD_ADDR=127.0.0.1:18070
W1_ADDR=127.0.0.1:18081
W2_ADDR=127.0.0.1:18082
COORD="http://$COORD_ADDR"
JOBS=24
TMP="$(mktemp -d)"
trap 'kill "$CPID" "$W1PID" "$W2PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/motifctl" ./cmd/motifctl
go build -o "$TMP/motifd" ./cmd/motifd

"$TMP/motifctl" -addr "$COORD_ADDR" -heartbeat 100ms 2>"$TMP/motifctl.log" &
CPID=$!
# Single-proc workers so the batch genuinely queues: the kill below must
# land while jobs are still waiting on (or running on) the doomed worker.
"$TMP/motifd" -addr "$W1_ADDR" -procs 1 -inner 2 -id w1 \
    -coordinator "$COORD" -advertise "http://$W1_ADDR" 2>"$TMP/w1.log" &
W1PID=$!
"$TMP/motifd" -addr "$W2_ADDR" -procs 1 -inner 2 -id w2 \
    -coordinator "$COORD" -advertise "http://$W2_ADDR" 2>"$TMP/w2.log" &
W2PID=$!

json_field() { # json_field FILE FIELD -> value (and asserts valid JSON)
    python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}

wait_up() { # wait_up URL NAME LOG
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "$2 did not come up; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_up "$COORD" motifctl "$TMP/motifctl.log"
wait_up "http://$W1_ADDR" w1 "$TMP/w1.log"
wait_up "http://$W2_ADDR" w2 "$TMP/w2.log"

# Both workers must register before load starts.
i=0
while :; do
    curl -sf "$COORD/metrics" >"$TMP/metrics.json"
    LIVE="$(json_field "$TMP/metrics.json" live_workers)"
    [ "$LIVE" = 2 ] && break
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "workers never registered (live=$LIVE)" >&2; cat "$TMP/motifctl.log" >&2; exit 1; }
    sleep 0.1
done
echo "cluster up: 2 workers registered"

# Submit the batch; every submission must be accepted (202).
: >"$TMP/ids"
j=0
while [ "$j" -lt "$JOBS" ]; do
    CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST "$COORD/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d "{\"type\":\"align\",\"align\":{\"n\":16,\"len\":300,\"seed\":$j}}")"
    [ "$CODE" = 202 ] || { echo "submit $j returned $CODE" >&2; cat "$TMP/submit.json" >&2; exit 1; }
    json_field "$TMP/submit.json" id >>"$TMP/ids"
    j=$((j + 1))
done
echo "submitted $JOBS jobs"

# Kill one worker mid-run — SIGKILL, no drain. The coordinator must
# re-place whatever was queued or in flight there onto the survivor.
kill -9 "$W1PID"
echo "killed w1 (SIGKILL)"

# Every accepted job must still complete.
while read -r ID; do
    i=0
    while :; do
        CODE="$(curl -s -o "$TMP/job.json" -w '%{http_code}' "$COORD/v1/jobs/$ID")"
        [ "$CODE" = 200 ] || { echo "poll $ID returned $CODE" >&2; exit 1; }
        STATE="$(json_field "$TMP/job.json" state)"
        case "$STATE" in
        done) break ;;
        error) echo "job $ID lost to the worker death:" >&2; cat "$TMP/job.json" >&2; exit 1 ;;
        esac
        i=$((i + 1))
        [ "$i" -lt 600 ] || { echo "job $ID stuck in $STATE" >&2; exit 1; }
        sleep 0.05
    done
done <"$TMP/ids"
echo "all $JOBS jobs completed after the kill"

# The coordinator must account for the whole batch, the re-placements, and
# the death (the expiry sweep may need a beat to fire).
i=0
while :; do
    curl -sf "$COORD/metrics" >"$TMP/metrics.json"
    DONE="$(json_field "$TMP/metrics.json" done)"
    FAILED="$(json_field "$TMP/metrics.json" failed)"
    RETRIES="$(json_field "$TMP/metrics.json" retries)"
    DEATHS="$(json_field "$TMP/metrics.json" worker_deaths)"
    [ "$FAILED" = 0 ] || { echo "failed=$FAILED, want 0" >&2; cat "$TMP/metrics.json" >&2; exit 1; }
    if [ "$DONE" = "$JOBS" ] && [ "$RETRIES" -ge 1 ] && [ "$DEATHS" -ge 1 ]; then
        break
    fi
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "metrics never settled: done=$DONE retries=$RETRIES deaths=$DEATHS" >&2; exit 1; }
    sleep 0.1
done
echo "metrics: done=$DONE failed=0 retries=$RETRIES worker_deaths=$DEATHS"

# The merged Chrome trace must export and contain events from coordinator
# and survivor.
curl -sf "$COORD/debug/trace?format=chrome" >"$TMP/trace.json"
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"] if isinstance(doc, dict) else doc
assert len(evs) > 0, "empty merged trace"
' "$TMP/trace.json"
echo "merged chrome trace exported"

# Graceful drain of coordinator and survivor.
kill -TERM "$CPID"
i=0
while kill -0 "$CPID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "motifctl did not drain" >&2; cat "$TMP/motifctl.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/motifctl.log" || { echo "no drain line in motifctl log:" >&2; cat "$TMP/motifctl.log" >&2; exit 1; }

kill -TERM "$W2PID"
i=0
while kill -0 "$W2PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "w2 did not drain" >&2; cat "$TMP/w2.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "drained" "$TMP/w2.log" || { echo "no drain line in w2 log:" >&2; cat "$TMP/w2.log" >&2; exit 1; }
echo "cluster smoke: OK"
