package memo

import (
	"fmt"
	"sync"
	"testing"
)

// TestDoConcurrentFillsRespectByteBound hammers Do from many goroutines
// with far more resident bytes than the budget and asserts the cache never
// exceeds its bound and never loses track of its accounting. Run under
// -race in CI: the eviction path (shard mutex) and the fill counters
// (atomics) interleave freely here.
func TestDoConcurrentFillsRespectByteBound(t *testing.T) {
	const (
		budget  = 4 << 10 // 4 KiB total across 16 shards
		valSize = 64
		keys    = 512 // 32 KiB of candidate residency: 8x the budget
		workers = 16
		rounds  = 4
	)
	c := New(budget)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					k := Sum("bound", []byte(fmt.Sprintf("key-%d", (i+w)%keys)))
					v, err := c.Do(k, func() (Value, error) {
						return Bytes(make([]byte, valSize)), nil
					})
					if err != nil {
						t.Errorf("Do: %v", err)
						return
					}
					if len(v.(Bytes)) != valSize {
						t.Errorf("value size %d, want %d", len(v.(Bytes)), valSize)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("accounting went negative: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions at 8x over-budget churn: %+v", st)
	}
	// The shards themselves must agree with the aggregate counters.
	var shardBytes int64
	var shardEntries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if s.bytes > c.perShard {
			s.mu.Unlock()
			t.Fatalf("shard %d holds %d bytes, per-shard budget %d", i, s.bytes, c.perShard)
		}
		if s.lru.Len() != len(s.items) {
			s.mu.Unlock()
			t.Fatalf("shard %d: lru len %d != items %d", i, s.lru.Len(), len(s.items))
		}
		shardBytes += s.bytes
		shardEntries += int64(len(s.items))
		s.mu.Unlock()
	}
	if shardBytes != st.Bytes || shardEntries != st.Entries {
		t.Fatalf("shard totals (%d bytes, %d entries) disagree with counters (%d, %d)",
			shardBytes, shardEntries, st.Bytes, st.Entries)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := Sum("roundtrip", []byte("payload"))
	got, err := ParseKey(k.String())
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", k.String(), err)
	}
	if got != k {
		t.Fatalf("round trip: got %s, want %s", got, k)
	}
	for _, bad := range []string{"", "abc", k.String()[:63], k.String() + "00", "zz" + k.String()[2:]} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) accepted malformed input", bad)
		}
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(1 << 12)
	k := Sum("peek", []byte("x"))
	if _, ok := c.Peek(k); ok {
		t.Fatal("Peek hit an empty cache")
	}
	c.Put(k, Bytes("v"))
	v, ok := c.Peek(k)
	if !ok || string(v.(Bytes)) != "v" {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved counters: %+v", st)
	}
	// Nil-cache safety, like every other method.
	var nilC *Cache
	if _, ok := nilC.Peek(k); ok {
		t.Fatal("nil cache Peek hit")
	}
}

func TestRecentFillsWindow(t *testing.T) {
	c := New(1 << 16)
	// Disabled by default: fills are not recorded.
	c.Put(Sum("fills", []byte("before")), Bytes("b"))
	if got := c.RecentFills(); got != nil {
		t.Fatalf("RecentFills before TrackFills = %v, want nil", got)
	}

	c.TrackFills(3)
	var want []Key
	for i := 0; i < 5; i++ {
		k := Sum("fills", []byte{byte(i)})
		c.Put(k, Bytes("payload"))
		want = append(want, k)
	}
	// Non-Bytes fills are not transferable and must not be advertised.
	c.Put(Sum("fills", []byte("int")), sized(8))

	got := c.RecentFills()
	if len(got) != 3 {
		t.Fatalf("window holds %d keys, want 3 (cap)", len(got))
	}
	for i, k := range got {
		if k != want[i+2] {
			t.Fatalf("window[%d] = %s, want %s (oldest dropped first)", i, k.Short(), want[i+2].Short())
		}
	}
	if again := c.RecentFills(); again != nil {
		t.Fatalf("second drain = %v, want nil", again)
	}
	var nilC *Cache
	nilC.TrackFills(4)
	if got := nilC.RecentFills(); got != nil {
		t.Fatalf("nil cache RecentFills = %v", got)
	}
}

type sized int64

func (s sized) Size() int64 { return int64(s) }
