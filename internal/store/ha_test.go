package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLeaseAcquireRenewSteal(t *testing.T) {
	dir := t.TempDir()
	ttl := 120 * time.Millisecond

	a, err := AcquireLease(dir, "active", ttl)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if h, age, err := ReadLease(dir); err != nil || h != "active" || age > ttl {
		t.Fatalf("ReadLease = %q, %s, %v; want active, fresh", h, age, err)
	}

	// A fresh lease refuses a different holder…
	if _, err := AcquireLease(dir, "standby", ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("standby acquire against fresh lease: %v; want ErrLeaseHeld", err)
	}
	// …but the holder itself re-acquires.
	self, err := AcquireLease(dir, "active", ttl)
	if err != nil {
		t.Fatalf("re-acquire own lease: %v", err)
	}
	self.Release()

	// Renewal keeps it fresh well past the TTL.
	time.Sleep(2 * ttl)
	if _, age, err := ReadLease(dir); err != nil || age >= ttl {
		t.Fatalf("after renewal window: age %s, %v; want < %s", age, err, ttl)
	}

	// Kill the holder without Release (crash): the lease goes stale and a
	// standby steals it.
	a.mu.Lock()
	close(a.done)
	a.mu.Unlock()
	a.wg.Wait()
	time.Sleep(ttl + ttl/2)
	b, err := AcquireLease(dir, "standby", ttl)
	if err != nil {
		t.Fatalf("steal stale lease: %v", err)
	}
	if h, _, _ := ReadLease(dir); h != "standby" {
		t.Fatalf("holder after steal = %q; want standby", h)
	}

	// Release removes the file so the next acquire needn't wait out the TTL.
	b.Release()
	if _, err := os.Stat(filepath.Join(dir, LeaseFile)); !os.IsNotExist(err) {
		t.Fatalf("lease file after Release: %v; want gone", err)
	}
	c, err := AcquireLease(dir, "active", ttl)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	c.Release()
	c.Release() // double release is safe
}

func TestTailObservesWithoutTruncating(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Accepted("j1", "", []byte(`{"op":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Accepted("j2", "", []byte(`{"op":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Done("j1", []byte(`"r1"`)); err != nil {
		t.Fatal(err)
	}

	// Tail while the writer still owns the log.
	info, err := Tail(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 || info.Jobs != 2 || info.Incomplete != 1 {
		t.Fatalf("Tail = %+v; want 3 records, 2 jobs, 1 incomplete", info)
	}

	// Simulate a torn in-flight append at the active tail: Tail must stop
	// there without modifying the file.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(last)

	info2, err := Tail(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Records != info.Records {
		t.Fatalf("Tail past torn tail = %+v; want same %d records", info2, info.Records)
	}
	after, _ := os.Stat(last)
	if before.Size() != after.Size() {
		t.Fatalf("Tail truncated the segment: %d -> %d bytes", before.Size(), after.Size())
	}

	// A real Open afterwards still recovers cleanly (truncating the junk),
	// proving Tail left the log in the state Open expects.
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if inc := s2.Incomplete(); len(inc) != 1 || inc[0].ID != "j2" {
		t.Fatalf("Incomplete after reopen = %+v; want [j2]", inc)
	}
}
