package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/memo"
)

// defaultMemoIndexCap bounds the digest→workers index. At ~100 bytes per
// entry this is a few MB at the cap; LRU eviction keeps the index biased
// toward recently filled (therefore still resident) entries, matching the
// workers' own LRU caches.
const defaultMemoIndexCap = 8192

// memoIndex is the coordinator's digest→workers map for the peer memo
// tier: which live workers recently filled which transferable cache
// entries. It is advisory — a stale row costs one failed peer fetch and
// the worker computes instead — so it is fed by bounded heartbeat
// summaries and bounded itself by LRU eviction, never consulted for
// correctness.
type memoIndex struct {
	mu      sync.Mutex
	cap     int
	entries map[memo.Key]*list.Element
	lru     *list.List // front = most recently filled/looked-up

	adds     atomic.Int64 // digest observations ingested from heartbeats
	lookups  atomic.Int64
	hits     atomic.Int64 // lookups that named at least one worker
	evicted  atomic.Int64
	scrubbed atomic.Int64 // entries dropped when their last holder died
}

// memoEntry is one indexed digest and the set of workers that reported
// filling it.
type memoEntry struct {
	key     memo.Key
	holders map[string]struct{}
}

func newMemoIndex(capacity int) *memoIndex {
	if capacity <= 0 {
		capacity = defaultMemoIndexCap
	}
	return &memoIndex{
		cap:     capacity,
		entries: make(map[memo.Key]*list.Element),
		lru:     list.New(),
	}
}

// add records that worker id filled the digest, evicting the
// least-recently-touched entry when the index is full.
func (x *memoIndex) add(k memo.Key, id string) {
	x.adds.Add(1)
	x.mu.Lock()
	defer x.mu.Unlock()
	if el, ok := x.entries[k]; ok {
		el.Value.(*memoEntry).holders[id] = struct{}{}
		x.lru.MoveToFront(el)
		return
	}
	e := &memoEntry{key: k, holders: map[string]struct{}{id: {}}}
	x.entries[k] = x.lru.PushFront(e)
	for len(x.entries) > x.cap {
		back := x.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*memoEntry)
		x.lru.Remove(back)
		delete(x.entries, old.key)
		x.evicted.Add(1)
	}
}

// lookup returns the IDs of workers that reported holding the digest,
// excluding the requester, refreshing the entry's recency.
func (x *memoIndex) lookup(k memo.Key, exclude string) []string {
	x.lookups.Add(1)
	x.mu.Lock()
	el, ok := x.entries[k]
	var ids []string
	if ok {
		x.lru.MoveToFront(el)
		for id := range el.Value.(*memoEntry).holders {
			if id != exclude {
				ids = append(ids, id)
			}
		}
	}
	x.mu.Unlock()
	if len(ids) > 0 {
		x.hits.Add(1)
	}
	return ids
}

// dropWorker removes a dead worker from every entry, scrubbing entries
// with no remaining holder. Called from the liveness sweep so lookups
// never hand out workers the registry has already written off.
func (x *memoIndex) dropWorker(id string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	var next *list.Element
	for el := x.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*memoEntry)
		if _, ok := e.holders[id]; !ok {
			continue
		}
		delete(e.holders, id)
		if len(e.holders) == 0 {
			x.lru.Remove(el)
			delete(x.entries, e.key)
			x.scrubbed.Add(1)
		}
	}
}

// MemoIndexStats is the memo-index block of the coordinator's /metrics.
type MemoIndexStats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Adds     int64 `json:"adds"`
	Lookups  int64 `json:"lookups"`
	Hits     int64 `json:"hits"`
	Evicted  int64 `json:"evicted"`
	Scrubbed int64 `json:"scrubbed"`
}

func (x *memoIndex) stats() MemoIndexStats {
	x.mu.Lock()
	n := len(x.entries)
	x.mu.Unlock()
	return MemoIndexStats{
		Entries:  n,
		Capacity: x.cap,
		Adds:     x.adds.Load(),
		Lookups:  x.lookups.Load(),
		Hits:     x.hits.Load(),
		Evicted:  x.evicted.Load(),
		Scrubbed: x.scrubbed.Load(),
	}
}
