package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/memoshare"
	"repro/internal/serve"
)

// newMemoWorker stands up a memo-enabled serving worker and joins it to the
// coordinator: agent membership plus the peer-fetch side of the cache tier.
func newMemoWorker(t *testing.T, id, coordURL string) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2, InnerWorkers: 2, QueueCap: 32, MemoBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	a, err := StartAgent(AgentConfig{
		CoordinatorURL: coordURL,
		ID:             id,
		Addr:           ts.URL,
		Server:         s,
		PoolWorkers:    2,
		QueueCap:       32,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetPeerFetcher(memoshare.NewFetcher(memoshare.FetcherConfig{
		Cache:       s.MemoCache(),
		Self:        id,
		Coordinator: a.CoordinatorURL,
		Tracer:      s.Tracer(),
	}))
	t.Cleanup(func() {
		a.Stop()
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// waitServeTerminal polls a local serve job until it finishes.
func waitServeTerminal(t *testing.T, j *serve.Job) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := j.Status()
		if st.State == serve.StateDone || st.State == serve.StateError {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", st.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPeerMemoTierEndToEnd drives the whole cache tier over real HTTP:
// worker A computes and fills its cache, its heartbeat advertises the
// digest, and worker B — never having seen the content — resolves its
// local miss by asking the coordinator for a holder and fetching the entry
// from A, digest-verified, instead of recomputing.
func TestPeerMemoTierEndToEnd(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.HeartbeatExpiry = 5 * time.Second
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownCoordinator(t, c)
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	wa := newMemoWorker(t, "wa", coord.URL)
	wb := newMemoWorker(t, "wb", coord.URL)
	waitFor(t, 5*time.Second, func() bool { return c.Metrics().LiveWorkers == 2 })

	// A computes the job and fills its local cache.
	ja, err := wa.Submit(treeReq(64))
	if err != nil {
		t.Fatal(err)
	}
	va := waitServeTerminal(t, ja)
	if va.State != serve.StateDone {
		t.Fatalf("job on wa finished %s: %s", va.State, va.Error)
	}

	// The fill digest reaches the coordinator's index via heartbeat.
	waitFor(t, 5*time.Second, func() bool {
		idx := c.Metrics().MemoIndex
		return idx != nil && idx.Entries > 0
	})

	// B misses locally and must resolve the same content from its peer.
	jb, err := wb.Submit(treeReq(64))
	if err != nil {
		t.Fatal(err)
	}
	vb := waitServeTerminal(t, jb)
	if vb.State != serve.StateDone {
		t.Fatalf("job on wb finished %s: %s", vb.State, vb.Error)
	}
	mb := wb.Metrics()
	if mb.Memoshare == nil || mb.Memoshare.PeerHits != 1 {
		t.Fatalf("wb memoshare = %+v; want exactly 1 peer hit", mb.Memoshare)
	}
	if mb.Memoshare.VerifyRejects != 0 || mb.Memoshare.FetchFailures != 0 {
		t.Fatalf("wb memoshare had failures: %+v", mb.Memoshare)
	}
	ma := wa.Metrics()
	if ma.Memoshare == nil || ma.Memoshare.Served != 1 {
		t.Fatalf("wa memoshare = %+v; want exactly 1 entry served", ma.Memoshare)
	}

	// The remote hit reaches the cluster rollup: local rate counts B's miss,
	// effective rate forgives it.
	waitFor(t, 5*time.Second, func() bool {
		m := c.Metrics().Memo
		return m != nil && m.RemoteHits == 1
	})
	m := c.Metrics().Memo
	if m.EffectiveHitRate <= m.HitRate {
		t.Fatalf("effective rate %v not above local rate %v despite a remote hit",
			m.EffectiveHitRate, m.HitRate)
	}
}

// TestAgentFailsOverToStandby: when the registered coordinator stops
// answering, the agent rides out hbFailLimit beats, then rotates to the
// next configured URL and registers there.
func TestAgentFailsOverToStandby(t *testing.T) {
	srv, _ := newRealWorker(t)

	primary := httptest.NewServer(coordStub(t, nil))
	var standbyRegs sync.Mutex
	registered := false
	standby := httptest.NewServer(coordStub(t, func() {
		standbyRegs.Lock()
		registered = true
		standbyRegs.Unlock()
	}))
	defer standby.Close()

	a, err := StartAgent(AgentConfig{
		CoordinatorURL: primary.URL,
		StandbyURLs:    []string{standby.URL},
		ID:             "failover-agent",
		Addr:           "http://127.0.0.1:1",
		Server:         srv,
		PoolWorkers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if got := a.CoordinatorURL(); got != primary.URL {
		t.Fatalf("agent starts at %s, want primary %s", got, primary.URL)
	}

	// Kill the primary: every further beat is connection-refused.
	primary.Close()

	waitFor(t, 10*time.Second, func() bool {
		standbyRegs.Lock()
		defer standbyRegs.Unlock()
		return registered && a.CoordinatorURL() == standby.URL
	})
}

// coordStub is a minimal coordinator wire surface: registers at a 5ms
// heartbeat cadence (so failover tests converge fast) and accepts every
// heartbeat. onRegister, when non-nil, observes registrations.
func coordStub(t *testing.T, onRegister func()) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", func(w http.ResponseWriter, r *http.Request) {
		if onRegister != nil {
			onRegister()
		}
		json.NewEncoder(w).Encode(RegisterResponse{Index: 0, HeartbeatMillis: 5, ExpiryMillis: 1000})
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	return mux
}
